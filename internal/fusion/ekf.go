// Package fusion implements the localization stack the controllers consume:
// an extended Kalman filter over [x, y, heading, speed] fed by IMU
// (prediction) and GNSS/odometry (updates), with χ²-gated innovations, plus
// a dead-reckoning fallback. The innovation statistics it exposes feed the
// A10 InnovationGate assertion; the gating switch is the "guard" the
// debug-loop experiment toggles.
package fusion

import (
	"fmt"
	"math"

	"adassure/internal/geom"
	"adassure/internal/sensors"
)

// Estimate is the fused localization output consumed by the controllers.
type Estimate struct {
	T       float64
	Pose    geom.Pose
	Speed   float64
	YawRate float64
	// PosStdDev is the 1-σ position uncertainty (geometric mean of the two
	// axes), handy for monitoring.
	PosStdDev float64
}

// EKFConfig parameterises the filter.
type EKFConfig struct {
	// Process noise (continuous-time spectral densities, discretised by dt).
	PosProcNoise     float64 // m²/s  (default 0.05)
	HeadingProcNoise float64 // rad²/s (default 0.01)
	SpeedProcNoise   float64 // (m/s)²/s (default 0.5)

	// Measurement noise (1-σ).
	GNSSPosStdDev  float64 // m (default 0.2)
	OdomSpeedStdev float64 // m/s (default 0.05)

	// GateThreshold is the χ² gate on the normalised innovation squared.
	// GNSS position updates are 2-DOF: 9.21 ≈ 99th percentile. Zero
	// disables gating (the unguarded configuration in the experiments).
	GateThreshold float64
	// InitialPosStdDev seeds the covariance (default 1 m).
	InitialPosStdDev float64
}

func (c *EKFConfig) defaults() {
	if c.PosProcNoise <= 0 {
		c.PosProcNoise = 0.05
	}
	if c.HeadingProcNoise <= 0 {
		c.HeadingProcNoise = 0.01
	}
	if c.SpeedProcNoise <= 0 {
		c.SpeedProcNoise = 0.5
	}
	if c.GNSSPosStdDev <= 0 {
		c.GNSSPosStdDev = 0.2
	}
	if c.OdomSpeedStdev <= 0 {
		c.OdomSpeedStdev = 0.05
	}
	if c.InitialPosStdDev <= 0 {
		c.InitialPosStdDev = 1
	}
}

// DefaultGate is the 99th-percentile χ² threshold for the 2-DOF GNSS
// position innovation.
const DefaultGate = 9.21

// EKF is an extended Kalman filter over the state [x, y, θ, v].
// It is not safe for concurrent use.
type EKF struct {
	cfg EKFConfig

	x Mat // 4×1 state
	p Mat // 4×4 covariance
	t float64

	yawRate float64 // latest IMU yaw rate, for the estimate output

	lastNIS      float64 // latest GNSS normalised innovation squared
	lastAccepted bool
	rejectStreak int
	initialized  bool

	s ekfScratch
}

// ekfScratch holds every working matrix the filter needs, preallocated once
// in NewEKF and reused across all predicts/updates: the steady-state filter
// performs no heap allocation. The observation matrices and measurement
// noise (h2/r2, h1/r1) are constants of the model and are filled at
// construction. All arithmetic goes through the bit-exact *Of matrix
// variants, so the filter output is identical to the allocating formulation
// it replaced.
type ekfScratch struct {
	F, Q, FT         Mat // 4×4 motion Jacobian, process noise, Fᵀ
	t44a, t44b, t44c Mat // 4×4 temporaries
	dx               Mat // 4×1 state correction

	// GNSS (2-DOF position) update.
	h2, t24    Mat // 2×4
	h2T, pht42 Mat // 4×2
	r2, s2     Mat // 2×2
	s2inv      Mat // 2×2
	aug2       Mat // 2×4 Gauss-Jordan workspace
	y2         Mat // 2×1 innovation
	y2T, t12   Mat // 1×2
	nis1       Mat // 1×1
	k42        Mat // 4×2 Kalman gain

	// Odometry (1-DOF speed) update.
	h1, t14    Mat // 1×4
	h1T, pht41 Mat // 4×1
	r1, s1     Mat // 1×1
	s1inv      Mat // 1×1
	aug1       Mat // 1×2 Gauss-Jordan workspace
	y1         Mat // 1×1 innovation
	k41        Mat // 4×1 Kalman gain
}

func newEKFScratch(cfg EKFConfig) ekfScratch {
	s := ekfScratch{
		F: NewMat(4, 4), Q: NewMat(4, 4), FT: NewMat(4, 4),
		t44a: NewMat(4, 4), t44b: NewMat(4, 4), t44c: NewMat(4, 4),
		dx: NewMat(4, 1),
		h2: NewMat(2, 4), t24: NewMat(2, 4),
		h2T: NewMat(4, 2), pht42: NewMat(4, 2),
		r2: NewMat(2, 2), s2: NewMat(2, 2), s2inv: NewMat(2, 2),
		aug2: NewMat(2, 4),
		y2:   NewMat(2, 1), y2T: NewMat(1, 2), t12: NewMat(1, 2),
		nis1: NewMat(1, 1), k42: NewMat(4, 2),
		h1: NewMat(1, 4), t14: NewMat(1, 4),
		h1T: NewMat(4, 1), pht41: NewMat(4, 1),
		r1: NewMat(1, 1), s1: NewMat(1, 1), s1inv: NewMat(1, 1),
		aug1: NewMat(1, 2),
		y1:   NewMat(1, 1), k41: NewMat(4, 1),
	}
	// H selects [x, y] for GNSS, [v] for odometry.
	s.h2.Set(0, 0, 1)
	s.h2.Set(1, 1, 1)
	s.h2T.TOf(s.h2)
	r2 := cfg.GNSSPosStdDev * cfg.GNSSPosStdDev
	s.r2.Set(0, 0, r2)
	s.r2.Set(1, 1, r2)
	s.h1.Set(0, 3, 1)
	s.h1T.TOf(s.h1)
	s.r1.Set(0, 0, cfg.OdomSpeedStdev*cfg.OdomSpeedStdev)
	return s
}

// NewEKF builds a filter initialised at the given pose and speed.
func NewEKF(cfg EKFConfig, t0 float64, pose geom.Pose, speed float64) *EKF {
	cfg.defaults()
	f := &EKF{cfg: cfg, x: NewMat(4, 1), p: Eye(4), t: t0, initialized: true}
	f.x.Set(0, 0, pose.Pos.X)
	f.x.Set(1, 0, pose.Pos.Y)
	f.x.Set(2, 0, pose.Heading)
	f.x.Set(3, 0, speed)
	s2 := cfg.InitialPosStdDev * cfg.InitialPosStdDev
	f.p.Set(0, 0, s2)
	f.p.Set(1, 1, s2)
	f.p.Set(2, 2, 0.05)
	f.p.Set(3, 3, 0.25)
	f.lastAccepted = true
	f.s = newEKFScratch(cfg)
	return f
}

// Time returns the filter's current time.
func (f *EKF) Time() float64 { return f.t }

// PredictIMU propagates the state to reading time using the IMU's yaw rate
// and longitudinal acceleration. Out-of-order readings are ignored.
func (f *EKF) PredictIMU(r sensors.IMUReading) {
	if !r.Valid || r.T <= f.t {
		return
	}
	dt := r.T - f.t
	f.t = r.T
	f.yawRate = r.YawRate

	th := f.x.At(2, 0)
	v := f.x.At(3, 0)
	// Midpoint heading for the position propagation.
	thMid := th + r.YawRate*dt/2
	f.x.Set(0, 0, f.x.At(0, 0)+v*math.Cos(thMid)*dt)
	f.x.Set(1, 0, f.x.At(1, 0)+v*math.Sin(thMid)*dt)
	f.x.Set(2, 0, geom.NormalizeAngle(th+r.YawRate*dt))
	f.x.Set(3, 0, math.Max(0, v+r.Accel*dt))

	// Jacobian of the motion model wrt the state.
	s := &f.s
	s.F.SetEye()
	s.F.Set(0, 2, -v*math.Sin(thMid)*dt)
	s.F.Set(0, 3, math.Cos(thMid)*dt)
	s.F.Set(1, 2, v*math.Cos(thMid)*dt)
	s.F.Set(1, 3, math.Sin(thMid)*dt)

	s.Q.SetZero()
	s.Q.Set(0, 0, f.cfg.PosProcNoise*dt)
	s.Q.Set(1, 1, f.cfg.PosProcNoise*dt)
	s.Q.Set(2, 2, f.cfg.HeadingProcNoise*dt)
	s.Q.Set(3, 3, f.cfg.SpeedProcNoise*dt)

	// p ← sym(F·p·Fᵀ + Q), on scratch.
	s.FT.TOf(s.F)
	s.t44a.MulOf(s.F, f.p)
	s.t44b.MulOf(s.t44a, s.FT)
	s.t44b.AddOf(s.t44b, s.Q)
	f.p.SymmetrizeOf(s.t44b)
}

// UpdateGNSS fuses a position fix. It returns the normalised innovation
// squared (NIS) and whether the measurement was accepted. With gating
// enabled, measurements whose NIS exceeds the threshold are rejected and
// do not perturb the state — the fusion-level "guard".
func (f *EKF) UpdateGNSS(fix sensors.GNSSFix) (nis float64, accepted bool) {
	if !fix.Valid {
		return 0, false
	}
	s := &f.s

	// Innovation.
	s.y2.Set(0, 0, fix.Pos.X-f.x.At(0, 0))
	s.y2.Set(1, 0, fix.Pos.Y-f.x.At(1, 0))

	// S = H·p·Hᵀ + R; NIS = yᵀ·S⁻¹·y, on scratch.
	s.t24.MulOf(s.h2, f.p)
	s.s2.MulOf(s.t24, s.h2T)
	s.s2.AddOf(s.s2, s.r2)
	s.s2inv.InvOf(s.s2, s.aug2)
	s.y2T.TOf(s.y2)
	s.t12.MulOf(s.y2T, s.s2inv)
	s.nis1.MulOf(s.t12, s.y2)
	nis = s.nis1.At(0, 0)
	f.lastNIS = nis

	if f.cfg.GateThreshold > 0 && nis > f.cfg.GateThreshold {
		f.lastAccepted = false
		f.rejectStreak++
		return nis, false
	}
	f.lastAccepted = true
	f.rejectStreak = 0

	// K = p·Hᵀ·S⁻¹; x ← x + K·y; p ← sym((I − K·H)·p).
	s.pht42.MulOf(f.p, s.h2T)
	s.k42.MulOf(s.pht42, s.s2inv)
	s.dx.MulOf(s.k42, s.y2)
	f.x.AddOf(f.x, s.dx)
	f.x.Set(2, 0, geom.NormalizeAngle(f.x.At(2, 0)))
	f.x.Set(3, 0, math.Max(0, f.x.At(3, 0)))
	s.t44a.MulOf(s.k42, s.h2)
	s.t44b.SetEye()
	s.t44b.SubOf(s.t44b, s.t44a)
	s.t44c.MulOf(s.t44b, f.p)
	f.p.SymmetrizeOf(s.t44c)
	return nis, true
}

// UpdateOdom fuses a wheel-speed measurement (1-DOF, ungated — wheel odometry
// is the trusted channel in this stack).
func (f *EKF) UpdateOdom(r sensors.OdomReading) {
	if !r.Valid {
		return
	}
	s := &f.s
	s.y1.Set(0, 0, r.Speed-f.x.At(3, 0))
	s.t14.MulOf(s.h1, f.p)
	s.s1.MulOf(s.t14, s.h1T)
	s.s1.AddOf(s.s1, s.r1)
	s.s1inv.InvOf(s.s1, s.aug1)
	s.pht41.MulOf(f.p, s.h1T)
	s.k41.MulOf(s.pht41, s.s1inv)
	s.dx.MulOf(s.k41, s.y1)
	f.x.AddOf(f.x, s.dx)
	f.x.Set(3, 0, math.Max(0, f.x.At(3, 0)))
	s.t44a.MulOf(s.k41, s.h1)
	s.t44b.SetEye()
	s.t44b.SubOf(s.t44b, s.t44a)
	s.t44c.MulOf(s.t44b, f.p)
	f.p.SymmetrizeOf(s.t44c)
}

// Estimate returns the current fused estimate.
func (f *EKF) Estimate() Estimate {
	sx := math.Sqrt(math.Max(0, f.p.At(0, 0)))
	sy := math.Sqrt(math.Max(0, f.p.At(1, 1)))
	return Estimate{
		T:         f.t,
		Pose:      geom.Pose{Pos: geom.V(f.x.At(0, 0), f.x.At(1, 0)), Heading: f.x.At(2, 0)},
		Speed:     f.x.At(3, 0),
		YawRate:   f.yawRate,
		PosStdDev: math.Sqrt(sx * sy),
	}
}

// LastNIS returns the normalised innovation squared of the most recent GNSS
// update attempt, and whether it was accepted. Feeds assertion A10.
func (f *EKF) LastNIS() (nis float64, accepted bool) { return f.lastNIS, f.lastAccepted }

// RejectStreak returns how many consecutive GNSS updates the gate has
// rejected — the signal the guarded stack uses to fall back to dead
// reckoning and brake.
func (f *EKF) RejectStreak() int { return f.rejectStreak }

// Covariance returns a copy of the covariance matrix (for tests and
// diagnostics).
func (f *EKF) Covariance() Mat { return f.p.Clone() }

// String implements fmt.Stringer.
func (f *EKF) String() string {
	e := f.Estimate()
	return fmt.Sprintf("ekf{t=%.2f %s v=%.2f σ=%.2f}", e.T, e.Pose, e.Speed, e.PosStdDev)
}

// DeadReckoner integrates IMU heading and odometry speed from a reference
// pose — the fallback localizer when GNSS is rejected or absent.
type DeadReckoner struct {
	t       float64
	pose    geom.Pose
	speed   float64
	yawRate float64
	init    bool
}

// NewDeadReckoner starts dead reckoning from the given pose and speed.
func NewDeadReckoner(t0 float64, pose geom.Pose, speed float64) *DeadReckoner {
	return &DeadReckoner{t: t0, pose: pose, speed: speed, init: true}
}

// Reset re-anchors the reckoner (e.g. to the latest trusted EKF estimate).
func (d *DeadReckoner) Reset(t float64, pose geom.Pose, speed float64) {
	d.t, d.pose, d.speed, d.init = t, pose, speed, true
}

// StepIMU advances the pose using an IMU reading.
func (d *DeadReckoner) StepIMU(r sensors.IMUReading) {
	if !d.init || !r.Valid || r.T <= d.t {
		return
	}
	dt := r.T - d.t
	d.t = r.T
	d.yawRate = r.YawRate
	thMid := d.pose.Heading + r.YawRate*dt/2
	d.pose.Pos = d.pose.Pos.Add(geom.V(math.Cos(thMid), math.Sin(thMid)).Scale(d.speed * dt))
	d.pose.Heading = geom.NormalizeAngle(d.pose.Heading + r.YawRate*dt)
	d.speed = math.Max(0, d.speed+r.Accel*dt)
}

// ObserveOdom snaps the speed to a wheel-odometry reading.
func (d *DeadReckoner) ObserveOdom(r sensors.OdomReading) {
	if r.Valid {
		d.speed = r.Speed
	}
}

// Estimate returns the dead-reckoned estimate.
func (d *DeadReckoner) Estimate() Estimate {
	return Estimate{T: d.t, Pose: d.pose, Speed: d.speed, YawRate: d.yawRate, PosStdDev: math.Inf(1)}
}
