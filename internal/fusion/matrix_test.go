package fusion

import (
	"math"
	"testing"
	"testing/quick"
)

func matEq(a, b Mat, tol float64) bool {
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		return false
	}
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			if math.Abs(a.At(i, j)-b.At(i, j)) > tol {
				return false
			}
		}
	}
	return true
}

func TestMatBasics(t *testing.T) {
	m := NewMat(2, 3)
	m.Set(0, 1, 5)
	if m.At(0, 1) != 5 || m.At(1, 2) != 0 {
		t.Error("Set/At broken")
	}
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Error("dims broken")
	}
	defer func() {
		if recover() == nil {
			t.Error("NewMat(0,1) should panic")
		}
	}()
	NewMat(0, 1)
}

func TestMatAddSubMul(t *testing.T) {
	a := NewMat(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 3)
	a.Set(1, 1, 4)
	b := Eye(2)
	sum := a.Add(b)
	if sum.At(0, 0) != 2 || sum.At(1, 1) != 5 {
		t.Error("Add broken")
	}
	diff := a.Sub(b)
	if diff.At(0, 0) != 0 || diff.At(0, 1) != 2 {
		t.Error("Sub broken")
	}
	prod := a.Mul(a)
	// [[1,2],[3,4]]² = [[7,10],[15,22]]
	want := NewMat(2, 2)
	want.Set(0, 0, 7)
	want.Set(0, 1, 10)
	want.Set(1, 0, 15)
	want.Set(1, 1, 22)
	if !matEq(prod, want, 1e-12) {
		t.Errorf("Mul broken: %+v", prod)
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched Mul should panic")
		}
	}()
	NewMat(2, 3).Mul(NewMat(2, 3))
}

func TestMatTranspose(t *testing.T) {
	m := NewMat(2, 3)
	m.Set(0, 2, 7)
	mt := m.T()
	if mt.Rows() != 3 || mt.Cols() != 2 || mt.At(2, 0) != 7 {
		t.Error("transpose broken")
	}
}

func TestMatInv(t *testing.T) {
	m := NewMat(2, 2)
	m.Set(0, 0, 4)
	m.Set(0, 1, 7)
	m.Set(1, 0, 2)
	m.Set(1, 1, 6)
	inv := m.Inv()
	if !matEq(m.Mul(inv), Eye(2), 1e-10) {
		t.Error("Inv: m·m⁻¹ != I")
	}
	defer func() {
		if recover() == nil {
			t.Error("singular Inv should panic")
		}
	}()
	NewMat(2, 2).Inv()
}

func TestMatInvProperty(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		for _, v := range []float64{a, b, c, d} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true
			}
		}
		// Build a well-conditioned SPD matrix M = AᵀA + I.
		m := NewMat(2, 2)
		m.Set(0, 0, a)
		m.Set(0, 1, b)
		m.Set(1, 0, c)
		m.Set(1, 1, d)
		spd := m.T().Mul(m).Add(Eye(2))
		return matEq(spd.Mul(spd.Inv()), Eye(2), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMatSymmetrize(t *testing.T) {
	m := NewMat(2, 2)
	m.Set(0, 1, 2)
	m.Set(1, 0, 4)
	s := m.Symmetrize()
	if s.At(0, 1) != 3 || s.At(1, 0) != 3 {
		t.Error("Symmetrize broken")
	}
}

func TestMatClone(t *testing.T) {
	m := Eye(2)
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone aliases storage")
	}
}
