package fusion

import (
	"math"
	"math/rand"
	"testing"

	"adassure/internal/geom"
	"adassure/internal/sensors"
)

// simulateStraight runs the EKF against synthetic truth moving along +x at
// constant speed, with the given GNSS noise and an optional spoof offset
// applied from spoofT onward. Returns the filter and the final truth pos.
func simulateStraight(cfg EKFConfig, seed int64, dur, speed, gnssNoise float64, spoof geom.Vec2, spoofT float64) (*EKF, geom.Vec2) {
	f := NewEKF(cfg, 0, geom.NewPose(0, 0, 0), speed)
	rng := rand.New(rand.NewSource(seed))
	const imuDT = 0.01
	gnssEvery := 10 // every 10 IMU steps → 10 Hz
	var truth geom.Vec2
	step := 0
	for t := imuDT; t <= dur; t += imuDT {
		truth = geom.V(speed*t, 0)
		f.PredictIMU(sensors.IMUReading{T: t, YawRate: 0, Accel: 0, Heading: 0, Valid: true})
		step++
		if step%gnssEvery == 0 {
			pos := truth.Add(geom.V(rng.NormFloat64()*gnssNoise, rng.NormFloat64()*gnssNoise))
			if spoofT > 0 && t >= spoofT {
				pos = pos.Add(spoof)
			}
			f.UpdateGNSS(sensors.GNSSFix{T: t, Pos: pos, Valid: true})
		}
		if step%2 == 0 {
			f.UpdateOdom(sensors.OdomReading{T: t, Speed: speed + rng.NormFloat64()*0.02, Valid: true})
		}
	}
	return f, truth
}

func TestEKFConvergesOnCleanData(t *testing.T) {
	f, truth := simulateStraight(EKFConfig{}, 1, 20, 5, 0.15, geom.Vec2{}, 0)
	e := f.Estimate()
	if d := e.Pose.Pos.Dist(truth); d > 0.3 {
		t.Errorf("position error %.3f m after 20 s clean run", d)
	}
	if math.Abs(e.Speed-5) > 0.1 {
		t.Errorf("speed estimate %.3f, want ~5", e.Speed)
	}
	if math.Abs(e.Pose.Heading) > 0.05 {
		t.Errorf("heading estimate %.3f, want ~0", e.Pose.Heading)
	}
	if e.PosStdDev > 0.5 || e.PosStdDev <= 0 {
		t.Errorf("position stddev %.3f implausible", e.PosStdDev)
	}
}

func TestEKFCovariancePSDAndBounded(t *testing.T) {
	f, _ := simulateStraight(EKFConfig{}, 2, 30, 4, 0.15, geom.Vec2{}, 0)
	p := f.Covariance()
	for i := 0; i < 4; i++ {
		if p.At(i, i) <= 0 {
			t.Errorf("covariance diagonal %d = %g, must be positive", i, p.At(i, i))
		}
		if p.At(i, i) > 10 {
			t.Errorf("covariance diagonal %d = %g diverged", i, p.At(i, i))
		}
		for j := 0; j < 4; j++ {
			if math.Abs(p.At(i, j)-p.At(j, i)) > 1e-9 {
				t.Error("covariance asymmetric")
			}
		}
	}
	// 2x2 position block must be PSD: det ≥ 0 and trace ≥ 0.
	det := p.At(0, 0)*p.At(1, 1) - p.At(0, 1)*p.At(1, 0)
	if det < 0 {
		t.Errorf("position covariance block not PSD: det=%g", det)
	}
}

func TestEKFGateRejectsSpoof(t *testing.T) {
	cfg := EKFConfig{GateThreshold: DefaultGate}
	// 5 s of 30 m spoof: the gate holds and the estimate stays near truth.
	f, truth := simulateStraight(cfg, 3, 25, 5, 0.15, geom.V(0, 30), 20)
	e := f.Estimate()
	if d := e.Pose.Pos.Dist(truth); d > 2 {
		t.Errorf("gated filter dragged %.2f m by spoof", d)
	}
	if f.RejectStreak() == 0 {
		t.Error("gate should be rejecting at end of spoofed run")
	}
	nis, accepted := f.LastNIS()
	if accepted || nis < DefaultGate {
		t.Errorf("last spoofed update should be rejected with high NIS, got %g accepted=%v", nis, accepted)
	}
}

func TestEKFGateCreepsUnderSustainedSpoof(t *testing.T) {
	// Documented limitation that motivates the dead-reckoning fallback in
	// the guarded stack: while the gate rejects, the covariance grows
	// (heading is unobserved without GNSS), so after enough sustained
	// spoofing the gate re-accepts and the filter is dragged.
	cfg := EKFConfig{GateThreshold: DefaultGate}
	f, truth := simulateStraight(cfg, 3, 35, 5, 0.15, geom.V(0, 30), 20)
	if d := f.Estimate().Pose.Pos.Dist(truth); d < 5 {
		t.Errorf("expected gate creep after 15 s of spoofing; error only %.2f m", d)
	}
}

func TestEKFUngatedFollowsSpoof(t *testing.T) {
	f, truth := simulateStraight(EKFConfig{}, 3, 30, 5, 0.15, geom.V(0, 30), 20)
	e := f.Estimate()
	// Without the gate the filter is dragged toward the spoofed position.
	if d := e.Pose.Pos.Dist(truth); d < 10 {
		t.Errorf("ungated filter only moved %.2f m under a 30 m spoof", d)
	}
}

func TestEKFNISSpikesAtSpoofOnset(t *testing.T) {
	cfg := EKFConfig{}
	f := NewEKF(cfg, 0, geom.NewPose(0, 0, 0), 5)
	for t0 := 0.01; t0 <= 10; t0 += 0.01 {
		f.PredictIMU(sensors.IMUReading{T: t0, Valid: true})
		if int(t0*100)%10 == 0 {
			f.UpdateGNSS(sensors.GNSSFix{T: t0, Pos: geom.V(5*t0, 0), Valid: true})
		}
	}
	// Spoofed fix 8 m off: NIS must spike far above clean values.
	nis, _ := f.UpdateGNSS(sensors.GNSSFix{T: 10.01, Pos: geom.V(50.05, 8), Valid: true})
	if nis < 50 {
		t.Errorf("NIS at spoof onset = %g, want large", nis)
	}
}

func TestEKFIgnoresInvalidAndStaleReadings(t *testing.T) {
	f := NewEKF(EKFConfig{}, 5, geom.NewPose(1, 2, 0.3), 2)
	before := f.Estimate()
	f.PredictIMU(sensors.IMUReading{T: 4, Valid: true})   // stale
	f.PredictIMU(sensors.IMUReading{T: 6, Valid: false})  // invalid
	f.UpdateGNSS(sensors.GNSSFix{T: 6, Valid: false})     // invalid
	f.UpdateOdom(sensors.OdomReading{T: 6, Valid: false}) // invalid
	after := f.Estimate()
	if before.Pose != after.Pose || before.Speed != after.Speed {
		t.Error("invalid/stale readings perturbed the filter")
	}
}

func TestEKFTurnTracking(t *testing.T) {
	// Truth: circle at constant speed and yaw rate.
	const (
		speed = 4.0
		yaw   = 0.2 // rad/s
		dur   = 30.0
	)
	f := NewEKF(EKFConfig{}, 0, geom.NewPose(0, 0, 0), speed)
	rng := rand.New(rand.NewSource(9))
	r := speed / yaw
	truthAt := func(t float64) geom.Vec2 {
		// Start at origin heading +x, turning left: center (0, r).
		a := yaw * t
		return geom.V(r*math.Sin(a), r-r*math.Cos(a))
	}
	step := 0
	for t0 := 0.01; t0 <= dur; t0 += 0.01 {
		f.PredictIMU(sensors.IMUReading{T: t0, YawRate: yaw + rng.NormFloat64()*0.005, Valid: true})
		step++
		if step%10 == 0 {
			p := truthAt(t0).Add(geom.V(rng.NormFloat64()*0.15, rng.NormFloat64()*0.15))
			f.UpdateGNSS(sensors.GNSSFix{T: t0, Pos: p, Valid: true})
		}
		if step%2 == 0 {
			f.UpdateOdom(sensors.OdomReading{T: t0, Speed: speed + rng.NormFloat64()*0.02, Valid: true})
		}
	}
	if d := f.Estimate().Pose.Pos.Dist(truthAt(dur)); d > 0.5 {
		t.Errorf("turn tracking error %.3f m", d)
	}
}

func TestDeadReckonerStraight(t *testing.T) {
	d := NewDeadReckoner(0, geom.NewPose(0, 0, 0), 5)
	for t0 := 0.01; t0 <= 10; t0 += 0.01 {
		d.StepIMU(sensors.IMUReading{T: t0, YawRate: 0, Accel: 0, Valid: true})
	}
	e := d.Estimate()
	if math.Abs(e.Pose.Pos.X-50) > 0.1 || math.Abs(e.Pose.Pos.Y) > 1e-9 {
		t.Errorf("dead reckoning end = %v, want (50,0)", e.Pose.Pos)
	}
	if !math.IsInf(e.PosStdDev, 1) {
		t.Error("dead reckoner should report unbounded position uncertainty")
	}
}

func TestDeadReckonerResetAndOdom(t *testing.T) {
	d := NewDeadReckoner(0, geom.NewPose(0, 0, 0), 0)
	d.ObserveOdom(sensors.OdomReading{T: 0.1, Speed: 3, Valid: true})
	for t0 := 0.11; t0 < 1.11; t0 += 0.01 {
		d.StepIMU(sensors.IMUReading{T: t0, Valid: true})
	}
	// Reckoner anchored at t=0; first IMU step covers [0, 0.11] and the loop
	// ends at t≈1.11, all at 3 m/s → x ≈ 3.33.
	if math.Abs(d.Estimate().Pose.Pos.X-3.33) > 0.05 {
		t.Errorf("odom-informed reckoning x = %g, want ~3.33", d.Estimate().Pose.Pos.X)
	}
	d.Reset(5, geom.NewPose(100, 0, 0), 1)
	if d.Estimate().Pose.Pos.X != 100 || d.Estimate().T != 5 {
		t.Error("reset did not re-anchor")
	}
}

// TestEKFNISDistribution: on clean data the normalised innovation squared
// is ~χ²(2): mean ≈ 2 and rarely above the 99% gate. This is the statistic
// assertion A10 and the guard's gate rely on.
func TestEKFNISDistribution(t *testing.T) {
	f := NewEKF(EKFConfig{}, 0, geom.NewPose(0, 0, 0), 5)
	rng := rand.New(rand.NewSource(21))
	var sum float64
	var n, above int
	step := 0
	for t0 := 0.01; t0 <= 120; t0 += 0.01 {
		f.PredictIMU(sensors.IMUReading{T: t0, Valid: true})
		step++
		if step%10 == 0 {
			pos := geom.V(5*t0+rng.NormFloat64()*0.2, rng.NormFloat64()*0.2)
			nis, _ := f.UpdateGNSS(sensors.GNSSFix{T: t0, Pos: pos, Valid: true})
			if t0 > 10 { // after convergence
				sum += nis
				n++
				if nis > DefaultGate {
					above++
				}
			}
		}
		if step%2 == 0 {
			f.UpdateOdom(sensors.OdomReading{T: t0, Speed: 5 + rng.NormFloat64()*0.02, Valid: true})
		}
	}
	mean := sum / float64(n)
	if mean < 1.0 || mean > 3.0 {
		t.Errorf("NIS mean = %.2f, want ~2 (χ² with 2 DOF)", mean)
	}
	if frac := float64(above) / float64(n); frac > 0.05 {
		t.Errorf("%.1f%% of clean NIS above the 99%% gate", frac*100)
	}
}

func TestComplementaryTracksStraight(t *testing.T) {
	c := NewComplementary(0, geom.NewPose(0, 0, 0), 5)
	rng := rand.New(rand.NewSource(4))
	step := 0
	var truth geom.Vec2
	for t0 := 0.01; t0 <= 30; t0 += 0.01 {
		truth = geom.V(5*t0, 0)
		c.PredictIMU(sensors.IMUReading{T: t0, Valid: true})
		step++
		if step%10 == 0 {
			c.UpdateGNSS(sensors.GNSSFix{T: t0, Pos: truth.Add(geom.V(rng.NormFloat64()*0.15, rng.NormFloat64()*0.15)), Valid: true})
		}
		if step%2 == 0 {
			c.UpdateOdom(sensors.OdomReading{T: t0, Speed: 5 + rng.NormFloat64()*0.02, Valid: true})
		}
	}
	e := c.Estimate()
	if d := e.Pose.Pos.Dist(truth); d > 0.5 {
		t.Errorf("complementary drifted %.2f m on clean straight", d)
	}
	if math.Abs(e.Speed-5) > 0.1 {
		t.Errorf("speed = %.2f", e.Speed)
	}
	if !math.IsNaN(e.PosStdDev) {
		t.Error("complementary has no covariance; PosStdDev should be NaN")
	}
	if nis, ok := c.LastNIS(); nis != 0 || !ok {
		t.Error("complementary LastNIS should be (0, true)")
	}
	if c.RejectStreak() != 0 {
		t.Error("complementary has no gate")
	}
}

func TestComplementaryComparableToEKFOnStraight(t *testing.T) {
	// On a constant-velocity straight, a well-tuned fixed-gain blend is
	// competitive with the EKF (steady state is where fixed gains shine);
	// the closed-loop advantage of the EKF shows up on manoeuvring runs —
	// see experiment X5. Here we only require comparability.
	run := func(loc Localizer) float64 {
		rng := rand.New(rand.NewSource(11))
		var sumSq float64
		var n int
		step := 0
		for t0 := 0.01; t0 <= 60; t0 += 0.01 {
			truth := geom.V(5*t0, 0)
			loc.PredictIMU(sensors.IMUReading{T: t0, Valid: true})
			step++
			if step%10 == 0 {
				loc.UpdateGNSS(sensors.GNSSFix{T: t0, Pos: truth.Add(geom.V(rng.NormFloat64()*0.2, rng.NormFloat64()*0.2)), Valid: true})
			}
			if step%2 == 0 {
				loc.UpdateOdom(sensors.OdomReading{T: t0, Speed: 5 + rng.NormFloat64()*0.02, Valid: true})
			}
			if t0 > 10 && step%20 == 0 {
				d := loc.Estimate().Pose.Pos.Dist(truth)
				sumSq += d * d
				n++
			}
		}
		return math.Sqrt(sumSq / float64(n))
	}
	ekfRMS := run(NewEKF(EKFConfig{}, 0, geom.NewPose(0, 0, 0), 5))
	compRMS := run(NewComplementary(0, geom.NewPose(0, 0, 0), 5))
	t.Logf("position RMS: ekf %.3f m, complementary %.3f m", ekfRMS, compRMS)
	if ekfRMS > 0.3 || compRMS > 0.3 {
		t.Errorf("localizer RMS out of band: ekf %.3f, complementary %.3f", ekfRMS, compRMS)
	}
	if compRMS > ekfRMS*1.8 || ekfRMS > compRMS*1.8 {
		t.Errorf("localizers should be comparable on a straight: ekf %.3f vs complementary %.3f", ekfRMS, compRMS)
	}
}
