package fusion

import "fmt"

// Mat is a dense row-major matrix just big enough for the 4-state EKF.
// A dedicated micro-implementation keeps the filter dependency-free and
// allocation-transparent.
type Mat struct {
	r, c int
	a    []float64
}

// NewMat allocates an r×c zero matrix.
func NewMat(r, c int) Mat {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("fusion: invalid matrix dims %dx%d", r, c))
	}
	return Mat{r: r, c: c, a: make([]float64, r*c)}
}

// Eye returns the n×n identity.
func Eye(n int) Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the row count.
func (m Mat) Rows() int { return m.r }

// Cols returns the column count.
func (m Mat) Cols() int { return m.c }

// At returns element (i, j).
func (m Mat) At(i, j int) float64 { return m.a[i*m.c+j] }

// Set assigns element (i, j).
func (m Mat) Set(i, j int, v float64) { m.a[i*m.c+j] = v }

// Add returns m + n.
func (m Mat) Add(n Mat) Mat {
	m.mustSameShape(n)
	out := NewMat(m.r, m.c)
	for i := range m.a {
		out.a[i] = m.a[i] + n.a[i]
	}
	return out
}

// Sub returns m - n.
func (m Mat) Sub(n Mat) Mat {
	m.mustSameShape(n)
	out := NewMat(m.r, m.c)
	for i := range m.a {
		out.a[i] = m.a[i] - n.a[i]
	}
	return out
}

// Mul returns the matrix product m·n.
func (m Mat) Mul(n Mat) Mat {
	if m.c != n.r {
		panic(fmt.Sprintf("fusion: dimension mismatch %dx%d · %dx%d", m.r, m.c, n.r, n.c))
	}
	out := NewMat(m.r, n.c)
	for i := 0; i < m.r; i++ {
		for k := 0; k < m.c; k++ {
			mik := m.a[i*m.c+k]
			if mik == 0 {
				continue
			}
			for j := 0; j < n.c; j++ {
				out.a[i*n.c+j] += mik * n.a[k*n.c+j]
			}
		}
	}
	return out
}

// T returns the transpose.
func (m Mat) T() Mat {
	out := NewMat(m.c, m.r)
	for i := 0; i < m.r; i++ {
		for j := 0; j < m.c; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Symmetrize returns (m + mᵀ)/2, used to keep covariance matrices from
// drifting asymmetric through floating-point round-off.
func (m Mat) Symmetrize() Mat {
	if m.r != m.c {
		panic("fusion: Symmetrize needs a square matrix")
	}
	out := NewMat(m.r, m.c)
	for i := 0; i < m.r; i++ {
		for j := 0; j < m.c; j++ {
			out.Set(i, j, (m.At(i, j)+m.At(j, i))/2)
		}
	}
	return out
}

// Inv returns the inverse via Gauss-Jordan with partial pivoting. It panics
// on singular input — in the EKF the matrices being inverted are innovation
// covariances, which are positive definite by construction; singularity
// indicates a programming error, not a data condition.
func (m Mat) Inv() Mat {
	if m.r != m.c {
		panic("fusion: Inv needs a square matrix")
	}
	n := m.r
	aug := NewMat(n, 2*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			aug.Set(i, j, m.At(i, j))
		}
		aug.Set(i, n+i, 1)
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if abs(aug.At(r, col)) > abs(aug.At(piv, col)) {
				piv = r
			}
		}
		if abs(aug.At(piv, col)) < 1e-14 {
			panic("fusion: singular matrix in Inv")
		}
		if piv != col {
			for j := 0; j < 2*n; j++ {
				a, b := aug.At(col, j), aug.At(piv, j)
				aug.Set(col, j, b)
				aug.Set(piv, j, a)
			}
		}
		d := aug.At(col, col)
		for j := 0; j < 2*n; j++ {
			aug.Set(col, j, aug.At(col, j)/d)
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := aug.At(r, col)
			if f == 0 {
				continue
			}
			for j := 0; j < 2*n; j++ {
				aug.Set(r, j, aug.At(r, j)-f*aug.At(col, j))
			}
		}
	}
	out := NewMat(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out.Set(i, j, aug.At(i, n+j))
		}
	}
	return out
}

// Clone returns a deep copy.
func (m Mat) Clone() Mat {
	out := NewMat(m.r, m.c)
	copy(out.a, m.a)
	return out
}

func (m Mat) mustSameShape(n Mat) {
	if m.r != n.r || m.c != n.c {
		panic(fmt.Sprintf("fusion: shape mismatch %dx%d vs %dx%d", m.r, m.c, n.r, n.c))
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
