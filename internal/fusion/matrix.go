package fusion

import "fmt"

// Mat is a dense row-major matrix just big enough for the 4-state EKF.
// A dedicated micro-implementation keeps the filter dependency-free and
// allocation-transparent.
type Mat struct {
	r, c int
	a    []float64
}

// NewMat allocates an r×c zero matrix.
func NewMat(r, c int) Mat {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("fusion: invalid matrix dims %dx%d", r, c))
	}
	return Mat{r: r, c: c, a: make([]float64, r*c)}
}

// Eye returns the n×n identity.
func Eye(n int) Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the row count.
func (m Mat) Rows() int { return m.r }

// Cols returns the column count.
func (m Mat) Cols() int { return m.c }

// At returns element (i, j).
func (m Mat) At(i, j int) float64 { return m.a[i*m.c+j] }

// Set assigns element (i, j).
func (m Mat) Set(i, j int, v float64) { m.a[i*m.c+j] = v }

// Add returns m + n.
func (m Mat) Add(n Mat) Mat {
	m.mustSameShape(n)
	out := NewMat(m.r, m.c)
	for i := range m.a {
		out.a[i] = m.a[i] + n.a[i]
	}
	return out
}

// Sub returns m - n.
func (m Mat) Sub(n Mat) Mat {
	m.mustSameShape(n)
	out := NewMat(m.r, m.c)
	for i := range m.a {
		out.a[i] = m.a[i] - n.a[i]
	}
	return out
}

// Mul returns the matrix product m·n.
func (m Mat) Mul(n Mat) Mat {
	if m.c != n.r {
		panic(fmt.Sprintf("fusion: dimension mismatch %dx%d · %dx%d", m.r, m.c, n.r, n.c))
	}
	out := NewMat(m.r, n.c)
	for i := 0; i < m.r; i++ {
		for k := 0; k < m.c; k++ {
			mik := m.a[i*m.c+k]
			if mik == 0 {
				continue
			}
			for j := 0; j < n.c; j++ {
				out.a[i*n.c+j] += mik * n.a[k*n.c+j]
			}
		}
	}
	return out
}

// T returns the transpose.
func (m Mat) T() Mat {
	out := NewMat(m.c, m.r)
	for i := 0; i < m.r; i++ {
		for j := 0; j < m.c; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Symmetrize returns (m + mᵀ)/2, used to keep covariance matrices from
// drifting asymmetric through floating-point round-off.
func (m Mat) Symmetrize() Mat {
	if m.r != m.c {
		panic("fusion: Symmetrize needs a square matrix")
	}
	out := NewMat(m.r, m.c)
	for i := 0; i < m.r; i++ {
		for j := 0; j < m.c; j++ {
			out.Set(i, j, (m.At(i, j)+m.At(j, i))/2)
		}
	}
	return out
}

// Inv returns the inverse via Gauss-Jordan with partial pivoting. It panics
// on singular input — in the EKF the matrices being inverted are innovation
// covariances, which are positive definite by construction; singularity
// indicates a programming error, not a data condition.
func (m Mat) Inv() Mat {
	if m.r != m.c {
		panic("fusion: Inv needs a square matrix")
	}
	n := m.r
	aug := NewMat(n, 2*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			aug.Set(i, j, m.At(i, j))
		}
		aug.Set(i, n+i, 1)
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if abs(aug.At(r, col)) > abs(aug.At(piv, col)) {
				piv = r
			}
		}
		if abs(aug.At(piv, col)) < 1e-14 {
			panic("fusion: singular matrix in Inv")
		}
		if piv != col {
			for j := 0; j < 2*n; j++ {
				a, b := aug.At(col, j), aug.At(piv, j)
				aug.Set(col, j, b)
				aug.Set(piv, j, a)
			}
		}
		d := aug.At(col, col)
		for j := 0; j < 2*n; j++ {
			aug.Set(col, j, aug.At(col, j)/d)
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := aug.At(r, col)
			if f == 0 {
				continue
			}
			for j := 0; j < 2*n; j++ {
				aug.Set(r, j, aug.At(r, j)-f*aug.At(col, j))
			}
		}
	}
	out := NewMat(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out.Set(i, j, aug.At(i, n+j))
		}
	}
	return out
}

// Clone returns a deep copy.
func (m Mat) Clone() Mat {
	out := NewMat(m.r, m.c)
	copy(out.a, m.a)
	return out
}

// --- In-place variants ----------------------------------------------------
//
// The *Of methods below write their result into the receiver's existing
// backing array instead of allocating a fresh matrix. They replicate the
// allocating variants' element-wise arithmetic exactly (same loop order,
// same accumulation sequence), so a computation rewritten onto preallocated
// scratch produces bit-identical results — the property the EKF relies on
// to keep golden experiment outputs stable while running allocation-free.

// SetZero zeroes every element in place.
func (m Mat) SetZero() {
	for i := range m.a {
		m.a[i] = 0
	}
}

// SetEye sets the receiver to the identity in place (square matrices only).
func (m Mat) SetEye() {
	if m.r != m.c {
		panic("fusion: SetEye needs a square matrix")
	}
	m.SetZero()
	for i := 0; i < m.r; i++ {
		m.Set(i, i, 1)
	}
}

// CopyFrom copies a into the receiver (same shape).
func (m Mat) CopyFrom(a Mat) {
	m.mustSameShape(a)
	copy(m.a, a.a)
}

// MulOf stores a·b into the receiver. The receiver must not alias a or b.
func (m Mat) MulOf(a, b Mat) {
	if a.c != b.r {
		panic(fmt.Sprintf("fusion: dimension mismatch %dx%d · %dx%d", a.r, a.c, b.r, b.c))
	}
	if m.r != a.r || m.c != b.c {
		panic(fmt.Sprintf("fusion: MulOf destination %dx%d for %dx%d product", m.r, m.c, a.r, b.c))
	}
	m.SetZero()
	for i := 0; i < a.r; i++ {
		for k := 0; k < a.c; k++ {
			aik := a.a[i*a.c+k]
			if aik == 0 {
				continue
			}
			for j := 0; j < b.c; j++ {
				m.a[i*b.c+j] += aik * b.a[k*b.c+j]
			}
		}
	}
}

// AddOf stores a + b element-wise into the receiver; the receiver may alias
// either operand.
func (m Mat) AddOf(a, b Mat) {
	a.mustSameShape(b)
	m.mustSameShape(a)
	for i := range m.a {
		m.a[i] = a.a[i] + b.a[i]
	}
}

// SubOf stores a − b element-wise into the receiver; the receiver may alias
// either operand.
func (m Mat) SubOf(a, b Mat) {
	a.mustSameShape(b)
	m.mustSameShape(a)
	for i := range m.a {
		m.a[i] = a.a[i] - b.a[i]
	}
}

// TOf stores aᵀ into the receiver. The receiver must not alias a.
func (m Mat) TOf(a Mat) {
	if m.r != a.c || m.c != a.r {
		panic(fmt.Sprintf("fusion: TOf destination %dx%d for %dx%d transpose", m.r, m.c, a.c, a.r))
	}
	for i := 0; i < a.r; i++ {
		for j := 0; j < a.c; j++ {
			m.Set(j, i, a.At(i, j))
		}
	}
}

// SymmetrizeOf stores (a + aᵀ)/2 into the receiver; the receiver may alias
// a (the mirror pair is read before either half is written).
func (m Mat) SymmetrizeOf(a Mat) {
	if a.r != a.c {
		panic("fusion: Symmetrize needs a square matrix")
	}
	m.mustSameShape(a)
	for i := 0; i < a.r; i++ {
		for j := i; j < a.c; j++ {
			upper := (a.At(i, j) + a.At(j, i)) / 2
			lower := (a.At(j, i) + a.At(i, j)) / 2
			m.Set(i, j, upper)
			m.Set(j, i, lower)
		}
	}
}

// InvOf stores a⁻¹ into the receiver using the caller-provided n×2n
// augmented workspace (the same Gauss-Jordan elimination as Inv, including
// pivot order, so the two agree bit-for-bit). The receiver must not alias a.
func (m Mat) InvOf(a, aug Mat) {
	if a.r != a.c {
		panic("fusion: Inv needs a square matrix")
	}
	n := a.r
	m.mustSameShape(a)
	if aug.r != n || aug.c != 2*n {
		panic(fmt.Sprintf("fusion: InvOf workspace %dx%d, need %dx%d", aug.r, aug.c, n, 2*n))
	}
	aug.SetZero()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			aug.Set(i, j, a.At(i, j))
		}
		aug.Set(i, n+i, 1)
	}
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if abs(aug.At(r, col)) > abs(aug.At(piv, col)) {
				piv = r
			}
		}
		if abs(aug.At(piv, col)) < 1e-14 {
			panic("fusion: singular matrix in Inv")
		}
		if piv != col {
			for j := 0; j < 2*n; j++ {
				a, b := aug.At(col, j), aug.At(piv, j)
				aug.Set(col, j, b)
				aug.Set(piv, j, a)
			}
		}
		d := aug.At(col, col)
		for j := 0; j < 2*n; j++ {
			aug.Set(col, j, aug.At(col, j)/d)
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := aug.At(r, col)
			if f == 0 {
				continue
			}
			for j := 0; j < 2*n; j++ {
				aug.Set(r, j, aug.At(r, j)-f*aug.At(col, j))
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, aug.At(i, n+j))
		}
	}
}

func (m Mat) mustSameShape(n Mat) {
	if m.r != n.r || m.c != n.c {
		panic(fmt.Sprintf("fusion: shape mismatch %dx%d vs %dx%d", m.r, m.c, n.r, n.c))
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
