package track

import (
	"fmt"
	"sort"

	"adassure/internal/geom"
)

// SpeedZone restricts the speed over an arc-length range of a track —
// depot areas, crossings, school zones. Zones are half-open [Start, End).
type SpeedZone struct {
	Start, End float64 // arc positions, m
	Limit      float64 // m/s
}

// Validate checks the zone.
func (z SpeedZone) Validate(pathLen float64) error {
	if z.Limit <= 0 {
		return fmt.Errorf("track: zone limit must be positive, got %g", z.Limit)
	}
	if z.Start < 0 || z.End <= z.Start || z.Start >= pathLen {
		return fmt.Errorf("track: invalid zone [%g, %g) on a %g m path", z.Start, z.End, pathLen)
	}
	return nil
}

// WithZones returns a copy of the track carrying speed zones. Zones may
// not overlap. The base speed limit applies outside every zone.
func (t *Track) WithZones(zones ...SpeedZone) (*Track, error) {
	sorted := make([]SpeedZone, len(zones))
	copy(sorted, zones)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	for i, z := range sorted {
		if err := z.Validate(t.path.Length()); err != nil {
			return nil, err
		}
		if i > 0 && sorted[i-1].End > z.Start {
			return nil, fmt.Errorf("track: zones [%g,%g) and [%g,%g) overlap",
				sorted[i-1].Start, sorted[i-1].End, z.Start, z.End)
		}
	}
	out := *t
	out.zones = sorted
	return &out, nil
}

// Zones returns the track's speed zones (possibly empty).
func (t *Track) Zones() []SpeedZone {
	out := make([]SpeedZone, len(t.zones))
	copy(out, t.zones)
	return out
}

// LimitAt returns the speed limit applicable at arc position s, accounting
// for zones. On closed tracks s is wrapped into [0, Length).
func (t *Track) LimitAt(s float64) float64 {
	if t.path.Closed() {
		L := t.path.Length()
		for s < 0 {
			s += L
		}
		for s >= L {
			s -= L
		}
	}
	for _, z := range t.zones {
		if s >= z.Start && s < z.End {
			if z.Limit < t.speedLimit {
				return z.Limit
			}
			return t.speedLimit
		}
	}
	return t.speedLimit
}

// FromWaypoints builds a custom route track through the given waypoints —
// the deployment-route entry point for downstream users. The waypoints are
// splined; closed loops must not repeat the first point.
func FromWaypoints(name string, waypoints []geom.Vec2, closed bool, speedLimit float64) (*Track, error) {
	sp, err := geom.NewSpline(waypoints, geom.SplineOpts{Spacing: 0.25, Closed: closed})
	if err != nil {
		return nil, fmt.Errorf("track %q: %w", name, err)
	}
	return New(name, sp, speedLimit)
}
