// Package track provides the reference-route library the experiments drive
// on: parametric test-track geometries (straight, circle, S-curve,
// figure-eight, double-lane-change, urban loop) rendered as smooth
// arc-length-parameterised paths with speed limits. It substitutes for the
// physical test-track routes of the original study.
package track

import (
	"fmt"
	"math"
	"sort"

	"adassure/internal/geom"
)

// Track couples a reference path with a speed limit and a human-readable
// name. Tracks are immutable.
type Track struct {
	name       string
	path       geom.Path
	speedLimit float64
	zones      []SpeedZone
}

// New wraps a path as a track. speedLimit must be positive.
func New(name string, path geom.Path, speedLimit float64) (*Track, error) {
	if name == "" {
		return nil, fmt.Errorf("track: empty name")
	}
	if path == nil {
		return nil, fmt.Errorf("track %q: nil path", name)
	}
	if speedLimit <= 0 {
		return nil, fmt.Errorf("track %q: speed limit must be positive, got %g", name, speedLimit)
	}
	return &Track{name: name, path: path, speedLimit: speedLimit}, nil
}

// Name returns the track's identifier.
func (t *Track) Name() string { return t.name }

// Path returns the reference path.
func (t *Track) Path() geom.Path { return t.path }

// SpeedLimit returns the track-wide speed limit in m/s.
func (t *Track) SpeedLimit() float64 { return t.speedLimit }

// StartPose returns the pose at the beginning of the path, for spawning
// the vehicle aligned with the route.
func (t *Track) StartPose() geom.Pose {
	return geom.Pose{Pos: t.path.PointAt(0), Heading: t.path.HeadingAt(0)}
}

// mustSpline builds a spline or panics; the generators below use verified
// control polygons, so failure is a programming error.
func mustSpline(ctrl []geom.Vec2, closed bool) *geom.Spline {
	sp, err := geom.NewSpline(ctrl, geom.SplineOpts{Spacing: 0.25, Closed: closed})
	if err != nil {
		panic(fmt.Sprintf("track: internal spline construction failed: %v", err))
	}
	return sp
}

// Straight returns a straight route of the given length along +x.
func Straight(length, speedLimit float64) (*Track, error) {
	if length <= 0 {
		return nil, fmt.Errorf("track: straight length must be positive, got %g", length)
	}
	n := int(math.Max(4, math.Ceil(length/20)))
	ctrl := make([]geom.Vec2, n+1)
	for i := range ctrl {
		ctrl[i] = geom.V(length*float64(i)/float64(n), 0)
	}
	return New("straight", mustSpline(ctrl, false), speedLimit)
}

// Circle returns a counter-clockwise circular loop of the given radius.
func Circle(radius, speedLimit float64) (*Track, error) {
	if radius <= 1 {
		return nil, fmt.Errorf("track: circle radius must exceed 1 m, got %g", radius)
	}
	const n = 36
	ctrl := make([]geom.Vec2, n)
	for i := range ctrl {
		a := 2 * math.Pi * float64(i) / n
		ctrl[i] = geom.V(radius*math.Cos(a), radius*math.Sin(a))
	}
	return New("circle", mustSpline(ctrl, true), speedLimit)
}

// SCurve returns an open S-shaped route: straight lead-in, left arc, right
// arc, straight lead-out. amplitude controls the lateral extent.
func SCurve(amplitude, speedLimit float64) (*Track, error) {
	if amplitude <= 0 {
		return nil, fmt.Errorf("track: s-curve amplitude must be positive, got %g", amplitude)
	}
	var ctrl []geom.Vec2
	for x := 0.0; x <= 120; x += 5 {
		y := amplitude * math.Sin(x/120*2*math.Pi)
		ctrl = append(ctrl, geom.V(x, y))
	}
	return New("s-curve", mustSpline(ctrl, false), speedLimit)
}

// FigureEight returns a closed figure-eight (lemniscate of Gerono, scaled),
// which exercises both turn directions and a curvature sign change.
func FigureEight(scale, speedLimit float64) (*Track, error) {
	if scale <= 5 {
		return nil, fmt.Errorf("track: figure-eight scale must exceed 5 m, got %g", scale)
	}
	const n = 48
	ctrl := make([]geom.Vec2, n)
	for i := range ctrl {
		t := 2 * math.Pi * float64(i) / n
		ctrl[i] = geom.V(scale*math.Sin(t), scale*math.Sin(t)*math.Cos(t))
	}
	return New("figure-eight", mustSpline(ctrl, true), speedLimit)
}

// DoubleLaneChange returns the ISO 3888-style double-lane-change manoeuvre:
// straight, offset left by laneOffset, hold, return, straight.
func DoubleLaneChange(laneOffset, speedLimit float64) (*Track, error) {
	if laneOffset <= 0 {
		return nil, fmt.Errorf("track: lane offset must be positive, got %g", laneOffset)
	}
	type seg struct{ x0, x1, y float64 }
	segs := []seg{{0, 30, 0}, {45, 70, laneOffset}, {85, 125, 0}}
	var ctrl []geom.Vec2
	for _, s := range segs {
		for x := s.x0; x <= s.x1; x += 5 {
			ctrl = append(ctrl, geom.V(x, s.y))
		}
	}
	return New("double-lane-change", mustSpline(ctrl, false), speedLimit)
}

// UrbanLoop returns the workhorse scenario: a closed loop with straights,
// 90° corners of differing radii and one tight hairpin, approximating a
// campus shuttle route.
func UrbanLoop(speedLimit float64) (*Track, error) {
	ctrl := []geom.Vec2{
		{X: 0, Y: 0}, {X: 30, Y: 0}, {X: 60, Y: 0}, {X: 80, Y: 5},
		{X: 90, Y: 20}, {X: 90, Y: 45}, {X: 85, Y: 60}, {X: 70, Y: 68},
		{X: 50, Y: 70}, {X: 30, Y: 70}, {X: 15, Y: 65}, {X: 5, Y: 52},
		{X: 2, Y: 35}, {X: 0, Y: 18},
	}
	return New("urban-loop", mustSpline(ctrl, true), speedLimit)
}

// Hairpin returns an open route with a single 180° hairpin of the given
// radius — the stress case where pure pursuit's corner-cutting weakness
// shows up.
func Hairpin(radius, speedLimit float64) (*Track, error) {
	if radius <= 2 {
		return nil, fmt.Errorf("track: hairpin radius must exceed 2 m, got %g", radius)
	}
	var ctrl []geom.Vec2
	for x := 0.0; x <= 40; x += 5 {
		ctrl = append(ctrl, geom.V(x, 0))
	}
	const n = 12
	for i := 1; i < n; i++ {
		a := math.Pi * float64(i) / n
		ctrl = append(ctrl, geom.V(40+radius*math.Sin(a), radius-radius*math.Cos(a)))
	}
	for x := 40.0; x >= 0; x -= 5 {
		ctrl = append(ctrl, geom.V(x, 2*radius))
	}
	return New("hairpin", mustSpline(ctrl, false), speedLimit)
}

// Catalog returns the named standard tracks used by the experiment
// harness, keyed by name, all built with the given speed limit.
func Catalog(speedLimit float64) (map[string]*Track, error) {
	builders := []func() (*Track, error){
		func() (*Track, error) { return Straight(200, speedLimit) },
		func() (*Track, error) { return Circle(25, speedLimit) },
		func() (*Track, error) { return SCurve(8, speedLimit) },
		func() (*Track, error) { return FigureEight(30, speedLimit) },
		func() (*Track, error) { return DoubleLaneChange(3.5, speedLimit) },
		func() (*Track, error) { return UrbanLoop(speedLimit) },
		func() (*Track, error) { return Hairpin(6, speedLimit) },
	}
	out := make(map[string]*Track, len(builders))
	for _, b := range builders {
		t, err := b()
		if err != nil {
			return nil, err
		}
		out[t.Name()] = t
	}
	return out, nil
}

// Names returns the sorted names in a catalog, for stable iteration.
func Names(catalog map[string]*Track) []string {
	names := make([]string, 0, len(catalog))
	for n := range catalog {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
