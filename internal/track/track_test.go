package track

import (
	"math"
	"testing"

	"adassure/internal/geom"
)

func TestNewValidation(t *testing.T) {
	p, err := geom.NewPolyline([]geom.Vec2{{X: 0, Y: 0}, {X: 1, Y: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New("", p, 5); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := New("x", nil, 5); err == nil {
		t.Error("nil path accepted")
	}
	if _, err := New("x", p, 0); err == nil {
		t.Error("zero speed limit accepted")
	}
	tr, err := New("x", p, 5)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name() != "x" || tr.SpeedLimit() != 5 || tr.Path() == nil {
		t.Error("accessors wrong")
	}
}

func TestStraight(t *testing.T) {
	tr, err := Straight(200, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.Path().Length()-200) > 1 {
		t.Errorf("length = %g, want ~200", tr.Path().Length())
	}
	if tr.Path().Closed() {
		t.Error("straight should be open")
	}
	if _, err := Straight(-1, 8); err == nil {
		t.Error("negative length accepted")
	}
	sp := tr.StartPose()
	if math.Abs(sp.Heading) > 0.01 {
		t.Errorf("start heading = %g, want ~0", sp.Heading)
	}
}

func TestCircleGeometry(t *testing.T) {
	tr, err := Circle(25, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Path().Closed() {
		t.Error("circle should be closed")
	}
	want := 2 * math.Pi * 25
	if math.Abs(tr.Path().Length()-want) > 0.02*want {
		t.Errorf("circumference = %g, want ~%g", tr.Path().Length(), want)
	}
	if _, err := Circle(0.5, 8); err == nil {
		t.Error("tiny radius accepted")
	}
}

func TestFigureEightCurvatureChangesSign(t *testing.T) {
	tr, err := FigureEight(30, 8)
	if err != nil {
		t.Fatal(err)
	}
	pos, neg := false, false
	L := tr.Path().Length()
	for i := 0; i < 100; i++ {
		k := tr.Path().CurvatureAt(L * float64(i) / 100)
		if k > 0.005 {
			pos = true
		}
		if k < -0.005 {
			neg = true
		}
	}
	if !pos || !neg {
		t.Errorf("figure-eight should have both turn directions (pos=%v neg=%v)", pos, neg)
	}
	if _, err := FigureEight(1, 8); err == nil {
		t.Error("small scale accepted")
	}
}

func TestDoubleLaneChangeReachesOffset(t *testing.T) {
	tr, err := DoubleLaneChange(3.5, 8)
	if err != nil {
		t.Fatal(err)
	}
	maxY := -math.Inf(1)
	L := tr.Path().Length()
	for i := 0; i <= 200; i++ {
		y := tr.Path().PointAt(L * float64(i) / 200).Y
		if y > maxY {
			maxY = y
		}
	}
	if math.Abs(maxY-3.5) > 0.3 {
		t.Errorf("max lateral offset = %g, want ~3.5", maxY)
	}
	if _, err := DoubleLaneChange(0, 8); err == nil {
		t.Error("zero offset accepted")
	}
}

func TestUrbanLoopClosedAndDrivable(t *testing.T) {
	tr, err := UrbanLoop(8)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Path().Closed() {
		t.Error("urban loop should be closed")
	}
	if tr.Path().Length() < 150 {
		t.Errorf("urban loop suspiciously short: %g m", tr.Path().Length())
	}
	// Drivable by the shuttle: max |curvature| within its turn capability.
	const shuttleMaxKappa = 1 / 4.0 // ~4 m min radius
	L := tr.Path().Length()
	for i := 0; i < 400; i++ {
		k := math.Abs(tr.Path().CurvatureAt(L * float64(i) / 400))
		if k > shuttleMaxKappa {
			t.Fatalf("curvature %g at s=%.1f exceeds shuttle capability", k, L*float64(i)/400)
		}
	}
}

func TestHairpinTurnsAround(t *testing.T) {
	tr, err := Hairpin(6, 8)
	if err != nil {
		t.Fatal(err)
	}
	h0 := tr.Path().HeadingAt(0)
	hEnd := tr.Path().HeadingAt(tr.Path().Length())
	if math.Abs(geom.AngleDiff(hEnd, h0)) < math.Pi*0.9 {
		t.Errorf("hairpin should reverse direction: start %g end %g", h0, hEnd)
	}
	if _, err := Hairpin(1, 8); err == nil {
		t.Error("tiny hairpin accepted")
	}
}

func TestSCurve(t *testing.T) {
	tr, err := SCurve(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Path().Closed() {
		t.Error("s-curve should be open")
	}
	if _, err := SCurve(-2, 8); err == nil {
		t.Error("negative amplitude accepted")
	}
}

func TestCatalog(t *testing.T) {
	cat, err := Catalog(8)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"circle", "double-lane-change", "figure-eight", "hairpin", "s-curve", "straight", "urban-loop"}
	names := Names(cat)
	if len(names) != len(want) {
		t.Fatalf("catalog names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("catalog names = %v, want %v", names, want)
		}
	}
	for _, n := range names {
		if cat[n].SpeedLimit() != 8 {
			t.Errorf("track %s speed limit = %g", n, cat[n].SpeedLimit())
		}
	}
}

func TestStartPoseOnPath(t *testing.T) {
	cat, err := Catalog(8)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Names(cat) {
		tr := cat[name]
		sp := tr.StartPose()
		_, lat := tr.Path().Project(sp.Pos)
		if math.Abs(lat) > 0.01 {
			t.Errorf("%s start pose %0.3f m off path", name, lat)
		}
	}
}
