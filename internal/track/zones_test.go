package track

import (
	"math"
	"testing"

	"adassure/internal/geom"
)

func TestWithZonesValidation(t *testing.T) {
	tr, err := Straight(200, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.WithZones(SpeedZone{Start: 10, End: 5, Limit: 3}); err == nil {
		t.Error("inverted zone accepted")
	}
	if _, err := tr.WithZones(SpeedZone{Start: 10, End: 20, Limit: 0}); err == nil {
		t.Error("zero limit accepted")
	}
	if _, err := tr.WithZones(SpeedZone{Start: 500, End: 600, Limit: 3}); err == nil {
		t.Error("zone beyond path accepted")
	}
	if _, err := tr.WithZones(
		SpeedZone{Start: 10, End: 30, Limit: 3},
		SpeedZone{Start: 25, End: 40, Limit: 2},
	); err == nil {
		t.Error("overlapping zones accepted")
	}
}

func TestLimitAt(t *testing.T) {
	base, err := Straight(200, 8)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := base.WithZones(
		SpeedZone{Start: 50, End: 80, Limit: 3},
		SpeedZone{Start: 120, End: 140, Limit: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ s, want float64 }{
		{0, 8}, {49.9, 8}, {50, 3}, {79.9, 3}, {80, 8}, {130, 2}, {150, 8},
	}
	for _, c := range cases {
		if got := tr.LimitAt(c.s); got != c.want {
			t.Errorf("LimitAt(%g) = %g, want %g", c.s, got, c.want)
		}
	}
	// Zone limits never raise above the base limit.
	up, err := base.WithZones(SpeedZone{Start: 10, End: 20, Limit: 50})
	if err != nil {
		t.Fatal(err)
	}
	if got := up.LimitAt(15); got != 8 {
		t.Errorf("zone must not raise the base limit: got %g", got)
	}
	// Original track untouched (value-copy semantics).
	if base.LimitAt(60) != 8 {
		t.Error("WithZones mutated the receiver")
	}
}

func TestLimitAtWrapsClosedTracks(t *testing.T) {
	base, err := Circle(25, 8)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := base.WithZones(SpeedZone{Start: 0, End: 10, Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	L := tr.Path().Length()
	if got := tr.LimitAt(L + 5); got != 2 {
		t.Errorf("wrapped LimitAt = %g, want 2", got)
	}
	if got := tr.LimitAt(-L + 5); got != 2 {
		t.Errorf("negative-wrapped LimitAt = %g, want 2", got)
	}
}

func TestFromWaypoints(t *testing.T) {
	wps := []geom.Vec2{{X: 0, Y: 0}, {X: 30, Y: 0}, {X: 60, Y: 10}, {X: 90, Y: 10}}
	tr, err := FromWaypoints("depot-run", wps, false, 5)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name() != "depot-run" || tr.SpeedLimit() != 5 {
		t.Error("metadata wrong")
	}
	if math.Abs(tr.Path().Length()-95) > 5 {
		t.Errorf("length = %g, want ~95", tr.Path().Length())
	}
	// Waypoints lie on the route.
	for _, w := range wps {
		if _, lat := tr.Path().Project(w); math.Abs(lat) > 0.1 {
			t.Errorf("waypoint %v is %.3f m off the route", w, lat)
		}
	}
	if _, err := FromWaypoints("bad", nil, false, 5); err == nil {
		t.Error("empty waypoints accepted")
	}
}

func TestZonesCopied(t *testing.T) {
	base, err := Straight(100, 8)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := base.WithZones(SpeedZone{Start: 10, End: 20, Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	zs := tr.Zones()
	zs[0].Limit = 99
	if tr.Zones()[0].Limit != 3 {
		t.Error("Zones returned aliased storage")
	}
}
