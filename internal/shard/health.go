package shard

import (
	"context"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"adassure/internal/obs"
)

// CheckerOptions tunes a health Checker.
type CheckerOptions struct {
	// Interval between probe rounds (default 1s).
	Interval time.Duration
	// Timeout per probe (default 2s).
	Timeout time.Duration
	// FailThreshold is the consecutive probe failures before a node is
	// marked unhealthy (default 2). One success marks it healthy again.
	FailThreshold int
	// Probe overrides the default HTTP GET /readyz probe (tests). It
	// reports whether the node is ready.
	Probe func(ctx context.Context, n *Node) bool
	// Obs receives the shard.health{worker} gauge (1 healthy, 0 not) and
	// the shard.probe_failures{worker} counter. Nil-safe.
	Obs *obs.Registry
	// Logger receives one record per health transition. Nil discards.
	Logger *slog.Logger
}

func (o *CheckerOptions) defaults() {
	if o.Interval <= 0 {
		o.Interval = time.Second
	}
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Second
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 2
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.DiscardHandler)
	}
}

// Checker actively probes ring members' /readyz and maintains their
// health bits. It is the single writer of fails; the coordinator may
// additionally flip a node down passively on transport errors.
type Checker struct {
	ring *Ring
	opts CheckerOptions

	client *http.Client
	stop   chan struct{}
	wg     sync.WaitGroup
}

// NewChecker builds a checker over ring.
func NewChecker(ring *Ring, opts CheckerOptions) *Checker {
	opts.defaults()
	c := &Checker{
		ring:   ring,
		opts:   opts,
		client: &http.Client{Timeout: opts.Timeout},
		stop:   make(chan struct{}),
	}
	if c.opts.Probe == nil {
		c.opts.Probe = c.httpProbe
	}
	return c
}

// httpProbe is the default probe: GET {url}/readyz, ready on 200.
func (c *Checker) httpProbe(ctx context.Context, n *Node) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.URL+"/readyz", nil)
	if err != nil {
		return false
	}
	res, err := c.client.Do(req)
	if err != nil {
		return false
	}
	res.Body.Close()
	return res.StatusCode == http.StatusOK
}

// Start launches the probe loop. Call Stop to end it.
func (c *Checker) Start() {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		ticker := time.NewTicker(c.opts.Interval)
		defer ticker.Stop()
		c.ProbeOnce() // settle initial health before the first tick
		for {
			select {
			case <-c.stop:
				return
			case <-ticker.C:
				c.ProbeOnce()
			}
		}
	}()
}

// ProbeOnce runs one probe round over the current membership. Exposed so
// tests (and the coordinator at boot) can drive rounds deterministically.
func (c *Checker) ProbeOnce() {
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.Timeout)
	defer cancel()
	var wg sync.WaitGroup
	for _, n := range c.ring.Nodes() {
		wg.Add(1)
		go func(n *Node) {
			defer wg.Done()
			ok := c.opts.Probe(ctx, n)
			c.apply(n, ok)
		}(n)
	}
	wg.Wait()
}

// apply folds one probe result into the node's health state.
func (c *Checker) apply(n *Node, ok bool) {
	healthGau := c.opts.Obs.GaugeL("shard.health", "worker", n.Name)
	if ok {
		n.fails.Store(0)
		if !n.healthy.Swap(true) {
			c.opts.Logger.Info("worker recovered", slog.String("worker", n.Name), slog.String("url", n.URL))
		}
		healthGau.Set(1)
		return
	}
	c.opts.Obs.CounterL("shard.probe_failures", "worker", n.Name).Inc()
	if n.fails.Add(1) >= int64(c.opts.FailThreshold) {
		if n.healthy.Swap(false) {
			c.opts.Logger.Warn("worker unhealthy", slog.String("worker", n.Name), slog.String("url", n.URL))
		}
		healthGau.Set(0)
	}
}

// Stop ends the probe loop and waits for it.
func (c *Checker) Stop() {
	close(c.stop)
	c.wg.Wait()
}
