package shard

import (
	"context"
	"fmt"
	"testing"
	"time"

	"adassure/internal/obs"
)

func ringWith(t *testing.T, names ...string) *Ring {
	t.Helper()
	r := NewRing(Options{})
	for _, n := range names {
		r.Add(n, "http://"+n)
	}
	return r
}

func TestPickDeterministicAndDistinct(t *testing.T) {
	r := ringWith(t, "w1", "w2", "w3")
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("%064d", i)
		a := r.Pick(key, 0)
		b := r.Pick(key, 0)
		if len(a) != 3 {
			t.Fatalf("Pick returned %d nodes, want 3", len(a))
		}
		seen := map[string]bool{}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("Pick not deterministic for %s", key)
			}
			if seen[a[j].Name] {
				t.Fatalf("duplicate node %s in preference order", a[j].Name)
			}
			seen[a[j].Name] = true
		}
	}
}

// TestDistributionRoughlyBalanced: with 3 workers and many keys, no
// worker owns a wildly disproportionate share.
func TestDistributionRoughlyBalanced(t *testing.T) {
	r := ringWith(t, "w1", "w2", "w3")
	counts := map[string]int{}
	n := 3000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i)).Name]++
	}
	for name, c := range counts {
		share := float64(c) / float64(n)
		if share < 0.15 || share > 0.55 {
			t.Fatalf("worker %s owns %.0f%% of keys — ring badly unbalanced (%v)", name, share*100, counts)
		}
	}
}

// TestConsistencyUnderMembershipChange: removing one worker must remap
// only the keys that worker owned.
func TestConsistencyUnderMembershipChange(t *testing.T) {
	r := ringWith(t, "w1", "w2", "w3")
	before := map[string]string{}
	n := 2000
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%d", i)
		before[k] = r.Owner(k).Name
	}
	r.Remove("w2")
	moved := 0
	for k, owner := range before {
		now := r.Owner(k).Name
		if owner == "w2" {
			if now == "w2" {
				t.Fatalf("key %s still owned by removed worker", k)
			}
			continue
		}
		if now != owner {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys not owned by the removed worker were remapped — consistency violated", moved)
	}
}

// TestUnhealthySortsLast: a down primary yields its keys to the next
// replica but stays in the preference order as last resort.
func TestUnhealthySortsLast(t *testing.T) {
	r := ringWith(t, "w1", "w2", "w3")
	key := "some-content-address"
	order := r.Pick(key, 0)
	primary := order[0]
	primary.SetHealthy(false)
	after := r.Pick(key, 0)
	if after[0] == primary {
		t.Fatal("unhealthy primary still first in preference order")
	}
	if after[len(after)-1] != primary {
		t.Fatalf("unhealthy primary not last: %v", names(after))
	}
	// Recovery restores the original order.
	primary.SetHealthy(true)
	restored := r.Pick(key, 0)
	if restored[0] != primary {
		t.Fatal("recovered primary did not take its keys back")
	}
}

// TestBoundedLoadSpills: a primary far above the fleet-average load is
// demoted behind in-bound nodes.
func TestBoundedLoadSpills(t *testing.T) {
	r := ringWith(t, "w1", "w2", "w3")
	key := "hot-key"
	primary := r.Pick(key, 0)[0]
	for i := 0; i < 100; i++ {
		primary.Begin()
	}
	order := r.Pick(key, 0)
	if order[0] == primary {
		t.Fatal("overloaded primary still first — bounded load not applied")
	}
	if !order[0].Healthy() {
		t.Fatal("spill target unhealthy")
	}
	for i := 0; i < 100; i++ {
		primary.Done()
	}
	if r.Pick(key, 0)[0] != primary {
		t.Fatal("drained primary did not take its keys back")
	}
}

func TestPickMaxAndEmptyRing(t *testing.T) {
	if got := NewRing(Options{}).Pick("k", 0); got != nil {
		t.Fatalf("empty ring Pick = %v", got)
	}
	r := ringWith(t, "w1", "w2", "w3")
	if got := r.Pick("k", 2); len(got) != 2 {
		t.Fatalf("Pick(max=2) returned %d", len(got))
	}
	if got := r.Pick("k", 99); len(got) != 3 {
		t.Fatalf("Pick(max=99) returned %d", len(got))
	}
}

func TestAddExistingReturnsSameNode(t *testing.T) {
	r := NewRing(Options{})
	a := r.Add("w1", "http://a")
	b := r.Add("w1", "http://b")
	if a != b {
		t.Fatal("re-adding a name created a second node")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func names(nodes []*Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Name
	}
	return out
}

// TestCheckerTransitions drives probe rounds with a scripted probe and
// watches the health bit honour the fail threshold.
func TestCheckerTransitions(t *testing.T) {
	r := ringWith(t, "w1")
	node := r.Nodes()[0]
	up := true
	reg := obs.NewRegistry()
	c := NewChecker(r, CheckerOptions{
		Interval:      time.Hour, // rounds driven manually
		FailThreshold: 2,
		Obs:           reg,
		Probe:         func(ctx context.Context, n *Node) bool { return up },
	})

	c.ProbeOnce()
	if !node.Healthy() {
		t.Fatal("healthy probe left node down")
	}
	// One failure is below threshold; the second flips the bit.
	up = false
	c.ProbeOnce()
	if !node.Healthy() {
		t.Fatal("single failure flipped health below threshold")
	}
	c.ProbeOnce()
	if node.Healthy() {
		t.Fatal("node healthy after reaching fail threshold")
	}
	if reg.CounterL("shard.probe_failures", "worker", "w1").Value() != 2 {
		t.Fatal("probe failures not counted")
	}
	// One success recovers immediately.
	up = true
	c.ProbeOnce()
	if !node.Healthy() {
		t.Fatal("node not recovered after successful probe")
	}
}

func TestCheckerStartStop(t *testing.T) {
	r := ringWith(t, "w1")
	calls := make(chan struct{}, 64)
	c := NewChecker(r, CheckerOptions{
		Interval: time.Millisecond,
		Probe: func(ctx context.Context, n *Node) bool {
			select {
			case calls <- struct{}{}:
			default:
			}
			return true
		},
	})
	c.Start()
	select {
	case <-calls:
	case <-time.After(2 * time.Second):
		t.Fatal("checker never probed")
	}
	c.Stop() // must return promptly and not panic
}
