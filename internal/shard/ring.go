// Package shard routes content-addressed cache keys across a fleet of
// backend workers by consistent hashing with bounded loads, and tracks
// worker health so the coordinator can fail over when a worker is lost.
//
// The ring places Replicas virtual nodes per worker on a 64-bit hash
// circle. A key hashes to a point on the circle and walks clockwise; the
// first distinct workers encountered form its preference order, so two
// coordinators with the same membership route identically, and removing
// one worker only remaps the keys that worker owned (the consistent-
// hashing property that keeps a worker's warm cache and persistent store
// useful across fleet changes — the rebalancing invariant documented in
// DESIGN.md §16).
//
// Bounded load (the "consistent hashing with bounded loads" refinement):
// a worker whose in-flight count exceeds LoadFactor × the fleet-average
// load is skipped in the first pass, spilling hot keys to the next
// replica instead of hot-spotting one box. Skipped workers still appear
// later in the preference order, so a spill is a reroute, not a drop.
//
// Health: each node carries a health bit maintained by a Checker probing
// GET /readyz (active) and flipped down by the coordinator on transport
// failures (passive). Unhealthy nodes sort after healthy ones in every
// preference order but are never removed from the ring — their key
// ranges return the moment they recover.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
)

// Node is one backend worker on the ring.
type Node struct {
	// Name is the stable ring identity (hash input) of the worker.
	Name string
	// URL is the worker's base URL, e.g. "http://10.0.0.7:8080".
	URL string

	healthy  atomic.Bool
	inflight atomic.Int64
	fails    atomic.Int64
}

// Healthy reports the node's current health bit.
func (n *Node) Healthy() bool { return n.healthy.Load() }

// SetHealthy flips the node's health bit (Checker and coordinator).
func (n *Node) SetHealthy(ok bool) { n.healthy.Store(ok) }

// Inflight reports the node's current in-flight request count.
func (n *Node) Inflight() int64 { return n.inflight.Load() }

// Begin marks one request in flight on the node.
func (n *Node) Begin() { n.inflight.Add(1) }

// Done marks one request finished on the node.
func (n *Node) Done() { n.inflight.Add(-1) }

// Fails reports consecutive probe failures (Checker bookkeeping).
func (n *Node) Fails() int64 { return n.fails.Load() }

// Options tunes a Ring.
type Options struct {
	// Replicas is the virtual-node count per worker (default 128). More
	// replicas smooth the key distribution at the cost of a larger table.
	Replicas int
	// LoadFactor is the bounded-load factor c ≥ 1 (default 1.25): a node
	// is skipped in the first pass when its in-flight count exceeds
	// ceil(c × average in-flight across healthy nodes).
	LoadFactor float64
}

func (o *Options) defaults() {
	if o.Replicas <= 0 {
		o.Replicas = 128
	}
	if o.LoadFactor < 1 {
		o.LoadFactor = 1.25
	}
}

// vnode is one point on the hash circle.
type vnode struct {
	hash uint64
	node *Node
}

// Ring is the consistent-hash routing table. Membership changes take a
// write lock; lookups take a read lock and are allocation-light.
type Ring struct {
	opts Options

	mu     sync.RWMutex
	vnodes []vnode // sorted by hash
	nodes  map[string]*Node
}

// NewRing builds an empty ring.
func NewRing(opts Options) *Ring {
	opts.defaults()
	return &Ring{opts: opts, nodes: map[string]*Node{}}
}

// hash64 is the ring's hash: FNV-1a over the input bytes, finished
// through a splitmix64 mixer. FNV alone clusters on the similar
// "name#i" vnode labels; the finalizer disperses them over the full
// circle. The function must stay deterministic across processes — every
// coordinator with the same membership must route identically.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	z := h.Sum64() + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Add places a worker (Replicas virtual nodes) on the ring. The node
// starts healthy. Adding an existing name returns the existing node.
func (r *Ring) Add(name, url string) *Node {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n, ok := r.nodes[name]; ok {
		return n
	}
	n := &Node{Name: name, URL: url}
	n.healthy.Store(true)
	r.nodes[name] = n
	for i := 0; i < r.opts.Replicas; i++ {
		r.vnodes = append(r.vnodes, vnode{hash: hash64(fmt.Sprintf("%s#%d", name, i)), node: n})
	}
	sort.Slice(r.vnodes, func(i, j int) bool { return r.vnodes[i].hash < r.vnodes[j].hash })
	return n
}

// Remove takes a worker off the ring entirely (vs. marking unhealthy,
// which keeps its key ranges reserved for recovery).
func (r *Ring) Remove(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n, ok := r.nodes[name]
	if !ok {
		return
	}
	delete(r.nodes, name)
	kept := r.vnodes[:0]
	for _, v := range r.vnodes {
		if v.node != n {
			kept = append(kept, v)
		}
	}
	r.vnodes = kept
}

// Nodes returns the members sorted by name.
func (r *Ring) Nodes() []*Node {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Node, 0, len(r.nodes))
	for _, n := range r.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len reports the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Owner returns the key's primary worker by pure ring position,
// ignoring health and load — the stable "home" of the key that decides
// which worker's store accumulates it.
func (r *Ring) Owner(key string) *Node {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.vnodes) == 0 {
		return nil
	}
	return r.vnodes[r.search(hash64(key))].node
}

// search returns the index of the first vnode at or clockwise of h.
// Caller holds a lock.
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	if i == len(r.vnodes) {
		i = 0
	}
	return i
}

// Pick returns the key's failover preference order: up to max distinct
// workers, walking clockwise from the key's ring position. Healthy
// workers within the load bound come first (in ring order), then
// healthy-but-overloaded ones, then unhealthy ones as a last resort —
// so the caller can simply try candidates in order. max ≤ 0 means all
// members. An empty ring returns nil.
func (r *Ring) Pick(key string, max int) []*Node {
	r.mu.RLock()
	defer r.mu.RUnlock()
	total := len(r.nodes)
	if total == 0 {
		return nil
	}
	if max <= 0 || max > total {
		max = total
	}

	// Bounded-load threshold over healthy members: ceil(c × (inflight+1) / healthy).
	var healthyCount, inflight int64
	for _, n := range r.nodes {
		if n.Healthy() {
			healthyCount++
			inflight += n.Inflight()
		}
	}
	bound := int64(1 << 62)
	if healthyCount > 0 {
		bound = int64(r.opts.LoadFactor*float64(inflight+1)/float64(healthyCount)) + 1
	}

	// Walk the circle once, collecting distinct nodes in ring order into
	// three preference tiers.
	var fit, loaded, down []*Node
	seen := make(map[*Node]struct{}, total)
	start := r.search(hash64(key))
	for i := 0; i < len(r.vnodes) && len(seen) < total; i++ {
		n := r.vnodes[(start+i)%len(r.vnodes)].node
		if _, dup := seen[n]; dup {
			continue
		}
		seen[n] = struct{}{}
		switch {
		case !n.Healthy():
			down = append(down, n)
		case n.Inflight() > bound:
			loaded = append(loaded, n)
		default:
			fit = append(fit, n)
		}
	}
	order := append(append(fit, loaded...), down...)
	if len(order) > max {
		order = order[:max]
	}
	return order
}
