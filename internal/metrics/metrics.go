// Package metrics computes the evaluation-layer quantities the experiment
// harness reports: detection latency and rate, false-positive rate,
// tracking-quality summaries, comfort measures and distribution helpers
// (CDFs, percentiles) for the figures.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"adassure/internal/core"
	"adassure/internal/trace"
)

// Detection summarises whether and when a violation record detected an
// attack with a given onset time.
type Detection struct {
	// Detected is true when any violation was raised at or after onset.
	Detected bool
	// Latency is (first violation time − onset); 0 when undetected.
	Latency float64
	// ByID is the assertion that raised the first post-onset violation.
	ByID string
	// FalsePositives counts violations raised before onset.
	FalsePositives int
}

// Detect scores a violation record against an attack onset. For clean runs
// (onset < 0) every violation is a false positive and Detected stays false.
func Detect(vs []core.Violation, onset float64) Detection {
	var d Detection
	first := math.Inf(1)
	for _, v := range vs {
		if onset >= 0 && v.T >= onset {
			if v.T < first {
				first = v.T
				d.ByID = v.AssertionID
			}
			d.Detected = true
		} else {
			d.FalsePositives++
		}
	}
	if d.Detected {
		d.Latency = first - onset
	}
	return d
}

// Rates aggregates detections across repeated runs.
type Rates struct {
	Runs           int
	Detected       int
	DetectionRate  float64
	MeanLatency    float64 // over detected runs
	MedianLatency  float64
	P90Latency     float64
	FalsePositives int     // total across runs
	FPPerRun       float64 // average
}

// Aggregate folds per-run detections into summary rates.
func Aggregate(ds []Detection) Rates {
	r := Rates{Runs: len(ds)}
	if len(ds) == 0 {
		return r
	}
	var lats []float64
	for _, d := range ds {
		if d.Detected {
			r.Detected++
			lats = append(lats, d.Latency)
		}
		r.FalsePositives += d.FalsePositives
	}
	r.DetectionRate = float64(r.Detected) / float64(r.Runs)
	r.FPPerRun = float64(r.FalsePositives) / float64(r.Runs)
	if len(lats) > 0 {
		var sum float64
		for _, l := range lats {
			sum += l
		}
		r.MeanLatency = sum / float64(len(lats))
		r.MedianLatency = Percentile(lats, 50)
		r.P90Latency = Percentile(lats, 90)
	}
	return r
}

// Percentile returns the p-th percentile (0–100) of values using linear
// interpolation between order statistics. It returns NaN for empty input.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	s := make([]float64, len(values))
	copy(s, values)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// CDF returns the empirical CDF of values at each distinct sample.
func CDF(values []float64) []CDFPoint {
	if len(values) == 0 {
		return nil
	}
	s := make([]float64, len(values))
	copy(s, values)
	sort.Float64s(s)
	out := make([]CDFPoint, 0, len(s))
	for i, v := range s {
		frac := float64(i+1) / float64(len(s))
		if len(out) > 0 && out[len(out)-1].Value == v {
			out[len(out)-1].Fraction = frac
			continue
		}
		out = append(out, CDFPoint{Value: v, Fraction: frac})
	}
	return out
}

// Comfort summarises ride-quality measures from a run trace.
type Comfort struct {
	MaxLatAccel          float64 // m/s², |v·ω| upper bound observed
	RMSLatAccel          float64
	MaxJerk              float64 // m/s³ of the commanded accel
	SteerReversalsPerMin float64
}

// ComfortFrom computes comfort measures from the standard sim trace
// signals (speed, steer, accel_cmd). Missing signals yield zeros. It reads
// the columnar views directly (Times/Values) rather than materialising
// row-oriented copies.
func ComfortFrom(tr *trace.Trace) Comfort {
	var c Comfort
	if tr == nil {
		return c
	}
	speedT, speedV := columnViews(tr, "speed")
	_, steerV := columnViews(tr, "steer")
	accelT, accelV := columnViews(tr, "accel_cmd")

	// Lateral acceleration via steer → yaw rate needs wheelbase; use the
	// recorded steer as a proxy signal for reversals and rely on speed ×
	// yaw-rate-like measure only when both present and aligned.
	n := len(speedV)
	if len(steerV) < n {
		n = len(steerV)
	}
	var sumSq float64
	var count int
	var reversals int
	for i := 1; i < n; i++ {
		// Approximate yaw rate from steering assuming L = 2.8 (shuttle);
		// the comfort figures compare configurations, so a shared constant
		// cancels out.
		const wheelbase = 2.8
		v := speedV[i]
		yaw := v * math.Tan(steerV[i]) / wheelbase
		lat := math.Abs(v * yaw)
		if lat > c.MaxLatAccel {
			c.MaxLatAccel = lat
		}
		sumSq += lat * lat
		count++
		if steerV[i]*steerV[i-1] < 0 && math.Abs(steerV[i]-steerV[i-1]) > 0.05 {
			reversals++
		}
	}
	if count > 0 {
		c.RMSLatAccel = math.Sqrt(sumSq / float64(count))
	}
	for i := 1; i < len(accelV); i++ {
		dt := accelT[i] - accelT[i-1]
		if dt <= 0 {
			continue
		}
		if j := math.Abs(accelV[i]-accelV[i-1]) / dt; j > c.MaxJerk {
			c.MaxJerk = j
		}
	}
	if n > 1 {
		dur := speedT[n-1] - speedT[0]
		if dur > 0 {
			c.SteerReversalsPerMin = float64(reversals) / dur * 60
		}
	}
	return c
}

// columnViews returns the time/value views for a signal without copying,
// nil/nil when the signal is absent.
func columnViews(tr *trace.Trace, signal string) (t, v []float64) {
	if tr.Len(signal) == 0 {
		return nil, nil
	}
	c := tr.Column(signal)
	return c.Times(), c.Values()
}

// ConfusionMatrix accumulates diagnosis outcomes per ground-truth label.
type ConfusionMatrix struct {
	labels []string
	index  map[string]int
	counts [][]int
}

// NewConfusionMatrix builds a matrix over the given labels.
func NewConfusionMatrix(labels []string) (*ConfusionMatrix, error) {
	if len(labels) == 0 {
		return nil, fmt.Errorf("metrics: confusion matrix needs labels")
	}
	idx := make(map[string]int, len(labels))
	for i, l := range labels {
		if _, dup := idx[l]; dup {
			return nil, fmt.Errorf("metrics: duplicate label %q", l)
		}
		idx[l] = i
	}
	counts := make([][]int, len(labels))
	for i := range counts {
		counts[i] = make([]int, len(labels))
	}
	return &ConfusionMatrix{labels: labels, index: idx, counts: counts}, nil
}

// Add records one (truth, predicted) outcome. Unknown labels are an error.
func (m *ConfusionMatrix) Add(truth, predicted string) error {
	ti, ok := m.index[truth]
	if !ok {
		return fmt.Errorf("metrics: unknown truth label %q", truth)
	}
	pi, ok := m.index[predicted]
	if !ok {
		return fmt.Errorf("metrics: unknown predicted label %q", predicted)
	}
	m.counts[ti][pi]++
	return nil
}

// Accuracy returns the trace/total ratio.
func (m *ConfusionMatrix) Accuracy() float64 {
	var diag, total int
	for i := range m.counts {
		for j, c := range m.counts[i] {
			total += c
			if i == j {
				diag += c
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(diag) / float64(total)
}

// Count returns the cell (truth, predicted).
func (m *ConfusionMatrix) Count(truth, predicted string) int {
	ti, ok1 := m.index[truth]
	pi, ok2 := m.index[predicted]
	if !ok1 || !ok2 {
		return 0
	}
	return m.counts[ti][pi]
}

// Labels returns the label order.
func (m *ConfusionMatrix) Labels() []string {
	out := make([]string, len(m.labels))
	copy(out, m.labels)
	return out
}
