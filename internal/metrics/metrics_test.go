package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"adassure/internal/core"
	"adassure/internal/trace"
)

func viol(id string, t float64) core.Violation {
	return core.Violation{AssertionID: id, T: t}
}

func TestDetect(t *testing.T) {
	vs := []core.Violation{viol("A3", 5), viol("A1", 21.5), viol("A2", 25)}
	d := Detect(vs, 20)
	if !d.Detected || d.ByID != "A1" {
		t.Errorf("detect = %+v", d)
	}
	if math.Abs(d.Latency-1.5) > 1e-12 {
		t.Errorf("latency = %g", d.Latency)
	}
	if d.FalsePositives != 1 {
		t.Errorf("FPs = %d", d.FalsePositives)
	}
	// Clean run: onset -1, everything is a false positive.
	d = Detect(vs, -1)
	if d.Detected || d.FalsePositives != 3 {
		t.Errorf("clean detect = %+v", d)
	}
	// No violations at all.
	if d := Detect(nil, 20); d.Detected || d.FalsePositives != 0 {
		t.Errorf("empty detect = %+v", d)
	}
}

func TestAggregate(t *testing.T) {
	ds := []Detection{
		{Detected: true, Latency: 1},
		{Detected: true, Latency: 3},
		{Detected: false, FalsePositives: 2},
		{Detected: true, Latency: 2},
	}
	r := Aggregate(ds)
	if r.Runs != 4 || r.Detected != 3 {
		t.Errorf("aggregate = %+v", r)
	}
	if math.Abs(r.DetectionRate-0.75) > 1e-12 {
		t.Errorf("rate = %g", r.DetectionRate)
	}
	if math.Abs(r.MeanLatency-2) > 1e-12 || math.Abs(r.MedianLatency-2) > 1e-12 {
		t.Errorf("latencies = %+v", r)
	}
	if r.FalsePositives != 2 || math.Abs(r.FPPerRun-0.5) > 1e-12 {
		t.Errorf("FPs = %+v", r)
	}
	if z := Aggregate(nil); z.Runs != 0 || z.DetectionRate != 0 {
		t.Errorf("empty aggregate = %+v", z)
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	if p := Percentile(vals, 50); p != 3 {
		t.Errorf("p50 = %g", p)
	}
	if p := Percentile(vals, 0); p != 1 {
		t.Errorf("p0 = %g", p)
	}
	if p := Percentile(vals, 100); p != 5 {
		t.Errorf("p100 = %g", p)
	}
	if p := Percentile(vals, 25); p != 2 {
		t.Errorf("p25 = %g", p)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
	if p := Percentile([]float64{7}, 90); p != 7 {
		t.Errorf("single-element percentile = %g", p)
	}
	// Input must not be mutated.
	in := []float64{3, 1, 2}
	Percentile(in, 50)
	if in[0] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		var vals []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		pa := math.Abs(math.Mod(a, 100))
		pb := math.Abs(math.Mod(b, 100))
		if pa > pb {
			pa, pb = pb, pa
		}
		return Percentile(vals, pa) <= Percentile(vals, pb)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2, 2})
	if len(pts) != 3 {
		t.Fatalf("cdf pts = %v", pts)
	}
	if pts[0].Value != 1 || math.Abs(pts[0].Fraction-0.25) > 1e-12 {
		t.Errorf("pts[0] = %+v", pts[0])
	}
	if pts[1].Value != 2 || math.Abs(pts[1].Fraction-0.75) > 1e-12 {
		t.Errorf("pts[1] = %+v (duplicates should collapse to the upper fraction)", pts[1])
	}
	if pts[2].Value != 3 || pts[2].Fraction != 1 {
		t.Errorf("pts[2] = %+v", pts[2])
	}
	if CDF(nil) != nil {
		t.Error("empty CDF should be nil")
	}
}

func TestComfortFrom(t *testing.T) {
	tr := trace.New()
	dt := 0.05
	for i := 0; i < 100; i++ {
		ts := float64(i) * dt
		tr.MustRecord("speed", ts, 5)
		steer := 0.1
		if i%2 == 1 {
			steer = -0.1 // bang-bang: reversals every step
		}
		tr.MustRecord("steer", ts, steer)
		tr.MustRecord("accel_cmd", ts, float64(i%2)) // jerk 1/dt = 20
	}
	c := ComfortFrom(tr)
	if c.MaxLatAccel <= 0 || c.RMSLatAccel <= 0 {
		t.Errorf("lat accel = %+v", c)
	}
	if math.Abs(c.MaxJerk-20) > 1e-6 {
		t.Errorf("max jerk = %g, want 20", c.MaxJerk)
	}
	if c.SteerReversalsPerMin < 500 {
		t.Errorf("reversals/min = %g, want ~1200", c.SteerReversalsPerMin)
	}
	if z := ComfortFrom(nil); z.MaxJerk != 0 {
		t.Error("nil trace comfort should be zero")
	}
}

func TestConfusionMatrix(t *testing.T) {
	m, err := NewConfusionMatrix([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]string{{"a", "a"}, {"a", "a"}, {"a", "b"}, {"b", "b"}, {"c", "a"}} {
		if err := m.Add(pair[0], pair[1]); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Count("a", "a"); got != 2 {
		t.Errorf("count(a,a) = %d", got)
	}
	if acc := m.Accuracy(); math.Abs(acc-0.6) > 1e-12 {
		t.Errorf("accuracy = %g, want 0.6", acc)
	}
	if err := m.Add("x", "a"); err == nil {
		t.Error("unknown truth accepted")
	}
	if err := m.Add("a", "x"); err == nil {
		t.Error("unknown prediction accepted")
	}
	if _, err := NewConfusionMatrix(nil); err == nil {
		t.Error("empty labels accepted")
	}
	if _, err := NewConfusionMatrix([]string{"a", "a"}); err == nil {
		t.Error("duplicate labels accepted")
	}
	if got := m.Labels(); len(got) != 3 || got[0] != "a" {
		t.Errorf("labels = %v", got)
	}
}
