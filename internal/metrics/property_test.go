package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"adassure/internal/core"
)

// propConfig bounds testing/quick's default float generator (which spans
// the full float64 range) to the magnitudes the evaluation layer actually
// sees — seconds of latency, metres of error, nanoseconds of cost — so the
// properties probe behaviour, not extreme-range rounding.
func propTrace(r *rand.Rand) []float64 {
	vs := make([]float64, 1+r.Intn(64))
	for i := range vs {
		vs[i] = (r.Float64() - 0.5) * 2e12
	}
	return vs
}

// TestPercentileQuantileProperty: on any non-empty trace, Percentile is
// monotone in q, stays within the sample range, and is exact (and
// clamped) at the extremes. Complements the narrower
// TestPercentileMonotoneProperty in metrics_test.go.
func TestPercentileQuantileProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	prop := func() bool {
		vs := propTrace(r)
		lo, hi := vs[0], vs[0]
		for _, v := range vs {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 100; q += 2.5 {
			p := Percentile(vs, q)
			if math.IsNaN(p) || p < prev || p < lo || p > hi {
				return false
			}
			prev = p
		}
		// Extremes are exact, and out-of-range q clamps to them.
		return Percentile(vs, 0) == lo && Percentile(vs, 100) == hi &&
			Percentile(vs, -10) == lo && Percentile(vs, 1000) == hi
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestCDFProperty: the empirical CDF has strictly increasing values,
// non-decreasing fractions in (0, 1], ends exactly at 1, and covers every
// sample (each value's fraction counts all samples ≤ it).
func TestCDFProperty(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	prop := func() bool {
		vs := propTrace(r)
		cdf := CDF(vs)
		if len(cdf) == 0 || len(cdf) > len(vs) {
			return false
		}
		n := float64(len(vs))
		prevV, prevF := math.Inf(-1), 0.0
		for _, pt := range cdf {
			if pt.Value <= prevV || pt.Fraction < prevF || pt.Fraction <= 0 || pt.Fraction > 1 {
				return false
			}
			// Fraction must equal rank(value)/n on the sorted sample.
			s := append([]float64(nil), vs...)
			sort.Float64s(s)
			rank := sort.SearchFloat64s(s, math.Nextafter(pt.Value, math.Inf(1)))
			if pt.Fraction != float64(rank)/n {
				return false
			}
			prevV, prevF = pt.Value, pt.Fraction
		}
		return cdf[len(cdf)-1].Fraction == 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestDetectProperty: on any randomized violation record, detection
// latency is never negative, the first post-onset violation wins, and
// pre-onset violations are all (and only) the false positives. Clean runs
// (onset < 0) never detect.
func TestDetectProperty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	prop := func() bool {
		onset := (r.Float64() - 0.25) * 80 // ~25% clean runs
		vs := make([]core.Violation, r.Intn(20))
		pre, first := 0, math.Inf(1)
		for i := range vs {
			vs[i] = core.Violation{AssertionID: "A1", T: r.Float64() * 100}
			if onset >= 0 && vs[i].T >= onset {
				first = math.Min(first, vs[i].T)
			} else {
				pre++
			}
		}
		d := Detect(vs, onset)
		if d.Latency < 0 || d.FalsePositives != pre {
			return false
		}
		if onset < 0 {
			return !d.Detected && d.Latency == 0
		}
		if !math.IsInf(first, 1) {
			return d.Detected && d.Latency == first-onset
		}
		return !d.Detected && d.Latency == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestAggregateProperty: aggregated rates are internally consistent —
// rate = detected/runs ∈ [0, 1], mean/median/p90 latency are non-negative
// and ordered median ≤ p90 ≤ max latency.
func TestAggregateProperty(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	prop := func() bool {
		ds := make([]Detection, r.Intn(30))
		maxLat := 0.0
		for i := range ds {
			if r.Intn(2) == 0 {
				ds[i] = Detection{Detected: true, Latency: r.Float64() * 50}
				maxLat = math.Max(maxLat, ds[i].Latency)
			}
			ds[i].FalsePositives = r.Intn(3)
		}
		a := Aggregate(ds)
		if a.Runs != len(ds) || a.DetectionRate < 0 || a.DetectionRate > 1 {
			return false
		}
		if len(ds) > 0 && a.DetectionRate != float64(a.Detected)/float64(a.Runs) {
			return false
		}
		if a.Detected == 0 {
			return a.MeanLatency == 0 && a.MedianLatency == 0 && a.P90Latency == 0
		}
		return a.MeanLatency >= 0 && a.MedianLatency >= 0 &&
			a.MedianLatency <= a.P90Latency+1e-9 && a.P90Latency <= maxLat+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
