package sensors

import (
	"math"
	"testing"
	"testing/quick"

	"adassure/internal/vehicle"
)

// pollAll steps a sensor through [0, dur) at engine rate 1/dt, collecting
// all delivered readings.
func pollGNSS(g *GNSS, truth vehicle.State, dur, dt float64) []GNSSFix {
	var out []GNSSFix
	for t := 0.0; t < dur; t += dt {
		out = append(out, g.Poll(truth, t)...)
	}
	return out
}

func TestGNSSRate(t *testing.T) {
	g := NewGNSS(GNSSConfig{Rate: 10}, 1)
	fixes := pollGNSS(g, vehicle.State{X: 5, Y: -3}, 10, 0.01)
	// 10 s at 10 Hz → ~100 fixes (±1 for boundary/latency effects).
	if len(fixes) < 98 || len(fixes) > 101 {
		t.Errorf("fix count = %d, want ~100", len(fixes))
	}
}

func TestGNSSLatency(t *testing.T) {
	g := NewGNSS(GNSSConfig{Rate: 10, Latency: 0.2}, 1)
	truth := vehicle.State{}
	// Sample taken at t=0 must not be delivered before t=0.2.
	for ts := 0.0; ts < 0.19; ts += 0.01 {
		if got := g.Poll(truth, ts); len(got) != 0 {
			t.Fatalf("fix delivered at t=%.2f before latency elapsed", ts)
		}
	}
	got := g.Poll(truth, 0.2)
	if len(got) != 1 {
		t.Fatalf("expected delivery at t=0.2, got %d fixes", len(got))
	}
	if math.Abs(got[0].T-0.2) > 1e-9 {
		t.Errorf("delivery time = %g", got[0].T)
	}
}

func TestGNSSNoiseStatistics(t *testing.T) {
	g := NewGNSS(GNSSConfig{Rate: 100, Latency: 1e-9, PosStdDev: 0.2, PosBiasWalk: 1e-9, PosBiasMax: 1e-6}, 42)
	truth := vehicle.State{X: 10, Y: 20}
	fixes := pollGNSS(g, truth, 50, 0.005)
	if len(fixes) < 1000 {
		t.Fatalf("too few fixes: %d", len(fixes))
	}
	var sx, sxx float64
	for _, f := range fixes {
		e := f.Pos.X - truth.X
		sx += e
		sxx += e * e
	}
	n := float64(len(fixes))
	mean := sx / n
	std := math.Sqrt(sxx/n - mean*mean)
	if math.Abs(mean) > 0.03 {
		t.Errorf("noise mean = %g, want ~0", mean)
	}
	if math.Abs(std-0.2) > 0.03 {
		t.Errorf("noise std = %g, want ~0.2", std)
	}
}

func TestGNSSBiasBounded(t *testing.T) {
	g := NewGNSS(GNSSConfig{Rate: 100, Latency: 1e-9, PosStdDev: 1e-9, PosBiasWalk: 0.05, PosBiasMax: 0.5}, 7)
	truth := vehicle.State{}
	for _, f := range pollGNSS(g, truth, 60, 0.005) {
		if math.Abs(f.Pos.X) > 0.5+1e-6 || math.Abs(f.Pos.Y) > 0.5+1e-6 {
			t.Fatalf("bias escaped saturation: %v", f.Pos)
		}
	}
}

func TestGNSSDeterministicPerSeed(t *testing.T) {
	mk := func() []GNSSFix {
		return pollGNSS(NewGNSS(GNSSConfig{}, 99), vehicle.State{X: 1}, 2, 0.01)
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fix %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := pollGNSS(NewGNSS(GNSSConfig{}, 100), vehicle.State{X: 1}, 2, 0.01)
	same := len(a) == len(c)
	if same {
		same = false
		for i := range a {
			if a[i].Pos != c[i].Pos {
				same = false
				break
			}
			same = true
		}
	}
	if same {
		t.Error("different seeds produced identical noise")
	}
}

func TestGNSSSpeedNonNegative(t *testing.T) {
	g := NewGNSS(GNSSConfig{Rate: 100, Latency: 1e-9, SpeedStdDev: 1}, 3)
	for _, f := range pollGNSS(g, vehicle.State{Speed: 0.1}, 20, 0.005) {
		if f.Speed < 0 {
			t.Fatalf("negative speed %g", f.Speed)
		}
	}
}

func TestIMURateAndHeading(t *testing.T) {
	m := NewIMU(IMUConfig{Rate: 100, Latency: 1e-9}, 5)
	truth := vehicle.State{Heading: 1.0, YawRate: 0.2}
	var n int
	var meanH float64
	for ts := 0.0; ts < 5; ts += 0.002 {
		for _, r := range m.Poll(truth, ts) {
			n++
			meanH += r.Heading
			if !r.Valid {
				t.Fatal("invalid reading from healthy IMU")
			}
		}
	}
	if n < 495 || n > 502 {
		t.Errorf("reading count = %d, want ~500", n)
	}
	meanH /= float64(n)
	if math.Abs(meanH-1.0) > 0.02 {
		t.Errorf("mean heading = %g, want ~1.0", meanH)
	}
}

func TestIMUBiasInjection(t *testing.T) {
	m := NewIMU(IMUConfig{Rate: 100, Latency: 1e-9, YawRateBias: 0.1, YawRateStdDev: 1e-9}, 5)
	truth := vehicle.State{YawRate: 0}
	var got float64
	var n int
	for ts := 0.0; ts < 1; ts += 0.002 {
		for _, r := range m.Poll(truth, ts) {
			got += r.YawRate
			n++
		}
	}
	if n == 0 {
		t.Fatal("no readings")
	}
	if math.Abs(got/float64(n)-0.1) > 1e-6 {
		t.Errorf("injected yaw bias not observed: mean=%g", got/float64(n))
	}
}

func TestOdometerScaleError(t *testing.T) {
	o := NewOdometer(OdomConfig{Rate: 50, Latency: 1e-9, SpeedStdDev: 1e-9, ScaleError: 0.05}, 1)
	truth := vehicle.State{Speed: 10}
	var got float64
	var n int
	for ts := 0.0; ts < 2; ts += 0.005 {
		for _, r := range o.Poll(truth, ts) {
			got += r.Speed
			n++
		}
	}
	if n == 0 {
		t.Fatal("no readings")
	}
	if math.Abs(got/float64(n)-10.5) > 0.01 {
		t.Errorf("scale error not applied: mean=%g want 10.5", got/float64(n))
	}
}

func TestOdometerNonNegativeProperty(t *testing.T) {
	f := func(seed int64, speed float64) bool {
		if math.IsNaN(speed) || math.IsInf(speed, 0) {
			return true
		}
		o := NewOdometer(OdomConfig{Rate: 50, Latency: 1e-9, SpeedStdDev: 0.5}, seed)
		truth := vehicle.State{Speed: math.Abs(math.Mod(speed, 8))}
		for ts := 0.0; ts < 1; ts += 0.01 {
			for _, r := range o.Poll(truth, ts) {
				if r.Speed < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSamplerPhaseStability(t *testing.T) {
	s := sampler{period: 0.1}
	var fired int
	for t0 := 0.0; t0 < 10; t0 += 0.013 { // engine rate not a multiple of sensor rate
		if s.due(t0) {
			fired++
		}
	}
	if fired < 99 || fired > 101 {
		t.Errorf("sampler fired %d times in 10 s at 10 Hz", fired)
	}
}

func TestDefaultsApplied(t *testing.T) {
	g := NewGNSS(GNSSConfig{}, 1)
	if g.Rate() != 10 {
		t.Errorf("default GNSS rate = %g", g.Rate())
	}
	m := NewIMU(IMUConfig{}, 1)
	if m.Rate() != 100 {
		t.Errorf("default IMU rate = %g", m.Rate())
	}
	o := NewOdometer(OdomConfig{}, 1)
	if o.Rate() != 50 {
		t.Errorf("default odometer rate = %g", o.Rate())
	}
}
