// Package sensors models the perception inputs of the control stack: GNSS
// position fixes, IMU yaw-rate/heading, and wheel odometry. Each sensor has
// a sample rate, delivery latency, and a noise model (white noise plus a
// slowly-walking bias), all driven by a deterministic seeded RNG so every
// simulation run is reproducible. These models substitute for the physical
// GNSS/IMU/odometer units of the original study's shuttle; they expose the
// same attack surface (position, heading and speed channels).
package sensors

import (
	"math"
	"math/rand"

	"adassure/internal/geom"
	"adassure/internal/vehicle"
)

// GNSSFix is one GNSS measurement as delivered to the fusion stack.
type GNSSFix struct {
	T      float64   // delivery time, s
	Pos    geom.Vec2 // measured position, m
	Course float64   // course over ground, rad (valid only when moving)
	Speed  float64   // speed over ground, m/s
	Valid  bool      // false models a dropout / no-fix epoch
}

// IMUReading is one inertial measurement.
type IMUReading struct {
	T       float64
	YawRate float64 // rad/s
	Accel   float64 // longitudinal acceleration, m/s²
	Heading float64 // integrated/magnetic heading, rad
	Valid   bool
}

// OdomReading is one wheel-odometry measurement.
type OdomReading struct {
	T     float64
	Speed float64 // m/s
	Valid bool
}

// sampler implements rate + latency bookkeeping shared by the sensors.
type sampler struct {
	period  float64
	latency float64
	nextDue float64
}

// due reports whether a new sample should be taken at time t and advances
// the schedule. Multiple periods elapsed in one call yield a single sample
// (the engine steps faster than any sensor, so this does not drop data).
func (s *sampler) due(t float64) bool {
	if t+1e-12 < s.nextDue {
		return false
	}
	// Advance past t to keep phase without accumulating error. The epsilon
	// in the due check means t may sit just below nextDue, in which case the
	// floor would compute 0 periods; always advance at least one.
	n := math.Floor((t-s.nextDue)/s.period) + 1
	if n < 1 {
		n = 1
	}
	s.nextDue += n * s.period
	return true
}

// noise is white Gaussian noise plus a first-order random-walk bias,
// the standard error model for consumer GNSS/IMU units.
type noise struct {
	rng      *rand.Rand
	stddev   float64
	bias     float64
	biasWalk float64 // per-sample bias random-walk stddev
	biasMax  float64
}

func (n *noise) next() float64 {
	if n.biasWalk > 0 {
		n.bias += n.rng.NormFloat64() * n.biasWalk
		n.bias = geom.Clamp(n.bias, -n.biasMax, n.biasMax)
	}
	return n.bias + n.rng.NormFloat64()*n.stddev
}

// GNSSConfig parameterises a GNSS receiver model.
type GNSSConfig struct {
	Rate        float64 // Hz (default 10)
	Latency     float64 // s (default 0.05)
	PosStdDev   float64 // m, per-axis white noise (default 0.15)
	PosBiasWalk float64 // m per sample bias walk (default 0.002)
	PosBiasMax  float64 // m bias saturation (default 0.5)
	SpeedStdDev float64 // m/s (default 0.05)
}

func (c *GNSSConfig) defaults() {
	if c.Rate <= 0 {
		c.Rate = 10
	}
	if c.Latency < 0 {
		c.Latency = 0
	} else if c.Latency == 0 {
		c.Latency = 0.05
	}
	if c.PosStdDev <= 0 {
		c.PosStdDev = 0.15
	}
	if c.PosBiasWalk <= 0 {
		c.PosBiasWalk = 0.002
	}
	if c.PosBiasMax <= 0 {
		c.PosBiasMax = 0.5
	}
	if c.SpeedStdDev <= 0 {
		c.SpeedStdDev = 0.05
	}
}

// GNSS is a GNSS receiver model. Not safe for concurrent use.
type GNSS struct {
	cfg     GNSSConfig
	s       sampler
	nx, ny  noise
	nv      noise
	pending []GNSSFix // latency queue, ordered by delivery time
	out     []GNSSFix // reused delivery buffer returned by Poll
}

// NewGNSS builds a GNSS model with the given seed.
func NewGNSS(cfg GNSSConfig, seed int64) *GNSS {
	cfg.defaults()
	rng := rand.New(rand.NewSource(seed))
	return &GNSS{
		cfg: cfg,
		s:   sampler{period: 1 / cfg.Rate, latency: cfg.Latency},
		nx:  noise{rng: rand.New(rand.NewSource(rng.Int63())), stddev: cfg.PosStdDev, biasWalk: cfg.PosBiasWalk, biasMax: cfg.PosBiasMax},
		ny:  noise{rng: rand.New(rand.NewSource(rng.Int63())), stddev: cfg.PosStdDev, biasWalk: cfg.PosBiasWalk, biasMax: cfg.PosBiasMax},
		nv:  noise{rng: rand.New(rand.NewSource(rng.Int63())), stddev: cfg.SpeedStdDev},
	}
}

// Rate returns the configured sample rate in Hz.
func (g *GNSS) Rate() float64 { return g.cfg.Rate }

// Poll observes the true state at time t. It returns any fixes whose
// delivery latency has elapsed by t, in delivery order. The returned slice
// is a view into a buffer owned by the sensor and is only valid until the
// next Poll; callers that retain fixes must copy them.
func (g *GNSS) Poll(truth vehicle.State, t float64) []GNSSFix {
	if g.s.due(t) {
		fix := GNSSFix{
			T:      t + g.s.latency,
			Pos:    geom.V(truth.X+g.nx.next(), truth.Y+g.ny.next()),
			Course: truth.Heading, // course follows heading in this no-slip substrate
			Speed:  math.Max(0, truth.Speed+g.nv.next()),
			Valid:  true,
		}
		g.pending = append(g.pending, fix)
	}
	g.out = drainDue(&g.pending, g.out, t, func(f GNSSFix) float64 { return f.T })
	return g.out
}

// drainDue moves readings with delivery time ≤ t from the queue (kept
// ordered by delivery time) into out, reusing out's backing array. The
// remainder of the queue is compacted to the front so both slices keep
// their capacity forever: after warm-up the sensor delivery path performs
// no heap allocation.
func drainDue[T any](q *[]T, out []T, t float64, when func(T) float64) []T {
	out = out[:0]
	i := 0
	for ; i < len(*q) && when((*q)[i]) <= t+1e-12; i++ {
		out = append(out, (*q)[i])
	}
	if i > 0 {
		n := copy(*q, (*q)[i:])
		*q = (*q)[:n]
	}
	return out
}

// IMUConfig parameterises an IMU model.
type IMUConfig struct {
	Rate           float64 // Hz (default 100)
	Latency        float64 // s (default 0.005)
	YawRateStdDev  float64 // rad/s (default 0.01)
	AccelStdDev    float64 // m/s² (default 0.05)
	HeadingStdDev  float64 // rad (default 0.01)
	HeadingBias    float64 // constant heading bias, rad (fault injection)
	YawRateBias    float64 // constant yaw-rate bias, rad/s (fault injection)
	HeadingDriftRW float64 // rad per sample heading bias walk (default 1e-5)
}

func (c *IMUConfig) defaults() {
	if c.Rate <= 0 {
		c.Rate = 100
	}
	if c.Latency == 0 {
		c.Latency = 0.005
	}
	if c.YawRateStdDev <= 0 {
		c.YawRateStdDev = 0.01
	}
	if c.AccelStdDev <= 0 {
		c.AccelStdDev = 0.05
	}
	if c.HeadingStdDev <= 0 {
		c.HeadingStdDev = 0.01
	}
	if c.HeadingDriftRW <= 0 {
		c.HeadingDriftRW = 1e-5
	}
}

// IMU is an inertial measurement unit model with an internally integrated
// heading channel (gyro-integrated, with drift), as AV stacks commonly log.
type IMU struct {
	cfg     IMUConfig
	s       sampler
	nr      noise
	na      noise
	nh      noise
	pending []IMUReading
	out     []IMUReading // reused delivery buffer returned by Poll
}

// NewIMU builds an IMU model with the given seed.
func NewIMU(cfg IMUConfig, seed int64) *IMU {
	cfg.defaults()
	rng := rand.New(rand.NewSource(seed))
	return &IMU{
		cfg: cfg,
		s:   sampler{period: 1 / cfg.Rate, latency: cfg.Latency},
		nr:  noise{rng: rand.New(rand.NewSource(rng.Int63())), stddev: cfg.YawRateStdDev, bias: cfg.YawRateBias},
		na:  noise{rng: rand.New(rand.NewSource(rng.Int63())), stddev: cfg.AccelStdDev},
		nh:  noise{rng: rand.New(rand.NewSource(rng.Int63())), stddev: cfg.HeadingStdDev, bias: cfg.HeadingBias, biasWalk: cfg.HeadingDriftRW, biasMax: 0.2},
	}
}

// Rate returns the configured sample rate in Hz.
func (m *IMU) Rate() float64 { return m.cfg.Rate }

// Poll observes the true state at time t and returns readings due by t.
// The returned slice is a view into a buffer owned by the sensor and is
// only valid until the next Poll.
func (m *IMU) Poll(truth vehicle.State, t float64) []IMUReading {
	if m.s.due(t) {
		r := IMUReading{
			T:       t + m.s.latency,
			YawRate: truth.YawRate + m.nr.next(),
			Accel:   truth.Accel + m.na.next(),
			Heading: geom.NormalizeAngle(truth.Heading + m.nh.next()),
			Valid:   true,
		}
		m.pending = append(m.pending, r)
	}
	m.out = drainDue(&m.pending, m.out, t, func(r IMUReading) float64 { return r.T })
	return m.out
}

// OdomConfig parameterises the wheel-odometry model.
type OdomConfig struct {
	Rate        float64 // Hz (default 50)
	Latency     float64 // s (default 0.01)
	SpeedStdDev float64 // m/s (default 0.02)
	ScaleError  float64 // multiplicative error, e.g. 0.01 = +1% (fault injection)
}

func (c *OdomConfig) defaults() {
	if c.Rate <= 0 {
		c.Rate = 50
	}
	if c.Latency == 0 {
		c.Latency = 0.01
	}
	if c.SpeedStdDev <= 0 {
		c.SpeedStdDev = 0.02
	}
}

// Odometer is a wheel-speed sensor model.
type Odometer struct {
	cfg     OdomConfig
	s       sampler
	nv      noise
	pending []OdomReading
	out     []OdomReading // reused delivery buffer returned by Poll
}

// NewOdometer builds an odometry model with the given seed.
func NewOdometer(cfg OdomConfig, seed int64) *Odometer {
	cfg.defaults()
	return &Odometer{
		cfg: cfg,
		s:   sampler{period: 1 / cfg.Rate, latency: cfg.Latency},
		nv:  noise{rng: rand.New(rand.NewSource(seed)), stddev: cfg.SpeedStdDev},
	}
}

// Rate returns the configured sample rate in Hz.
func (o *Odometer) Rate() float64 { return o.cfg.Rate }

// Poll observes the true state at time t and returns readings due by t.
// The returned slice is a view into a buffer owned by the sensor and is
// only valid until the next Poll.
func (o *Odometer) Poll(truth vehicle.State, t float64) []OdomReading {
	if o.s.due(t) {
		r := OdomReading{
			T:     t + o.s.latency,
			Speed: math.Max(0, truth.Speed*(1+o.cfg.ScaleError)+o.nv.next()),
			Valid: true,
		}
		o.pending = append(o.pending, r)
	}
	o.out = drainDue(&o.pending, o.out, t, func(r OdomReading) float64 { return r.T })
	return o.out
}
