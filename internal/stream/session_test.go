package stream_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"adassure/internal/core"
	"adassure/internal/stream"
)

// cruiseFrame synthesises frame k of an endless clean cruise: constant
// 5 m/s along the +x axis with every sensor in agreement. No catalog
// assertion fires on this stream, at any length — the steady state the
// soak and allocation tests pin their budgets on.
func cruiseFrame(k int64) core.Frame {
	const dt, v = 0.05, 5.0
	t := float64(k) * dt
	x := v * t
	return core.Frame{
		T: t, Dt: dt,
		EstX: x, EstY: 0, EstHeading: 0, EstSpeed: v, EstYawRate: 0, EstPosStdDev: 0.3,
		GNSSX: x, GNSSY: 0, GNSSSpeed: v, GNSSCourse: 0, GNSSAge: 0.01, GNSSValid: true,
		IMUHeading: 0, IMUYawRate: 0, IMUAccel: 0, IMUAge: 0.01,
		OdomSpeed: v, OdomAge: 0.01,
		CmdSteer: 0, CmdAccel: 0,
		RefS: x, CTE: 0, HeadingErr: 0, Curvature: 0, TargetSpeed: v, Progress: x,
		NIS: 1, NISFresh: true,
		TrueX: x, TrueY: 0, TrueHeading: 0, TrueSpeed: v, TrueCTE: 0,
	}
}

func newSession(t *testing.T, cfg stream.Config) *stream.Session {
	t.Helper()
	s, err := stream.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParseFrameContract(t *testing.T) {
	cases := []struct {
		name, line, reason string
	}{
		{"empty", "", stream.RejectSyntax},
		{"null", "null", stream.RejectNotObject},
		{"scalar", "42", stream.RejectNotObject},
		{"array", `[{"T":1}]`, stream.RejectNotObject},
		{"truncated", `{"T": 1`, stream.RejectSyntax},
		{"garbage", "not json at all", stream.RejectNotObject},
		{"unknown-field", `{"T":1,"Bogus":2}`, stream.RejectSchema},
		{"wrong-type", `{"T":"one"}`, stream.RejectSchema},
		{"non-finite", `{"T":1e999}`, stream.RejectNonFinite},
		{"trailing", `{"T":1} {"T":2}`, stream.RejectSyntax},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := stream.ParseFrame([]byte(c.line))
			var fe *stream.FrameError
			if !errors.As(err, &fe) {
				t.Fatalf("ParseFrame(%q) err = %v, want *FrameError", c.line, err)
			}
			if fe.Reason != c.reason {
				t.Fatalf("ParseFrame(%q) reason = %q, want %q", c.line, fe.Reason, c.reason)
			}
			if stream.Terminal(err) {
				t.Fatalf("a single frame rejection must not be terminal")
			}
		})
	}
	f, err := stream.ParseFrame([]byte(`{"T":1.5,"Dt":0.05,"EstSpeed":3,"GNSSValid":true}`))
	if err != nil {
		t.Fatal(err)
	}
	if f.T != 1.5 || f.EstSpeed != 3 || !f.GNSSValid {
		t.Fatalf("parsed frame = %+v", f)
	}
}

func TestOutOfOrderFramesRejected(t *testing.T) {
	s := newSession(t, stream.Config{})
	if err := s.Ingest(cruiseFrame(10)); err != nil {
		t.Fatal(err)
	}
	// Equal timestamps are legal, matching offline recording validation.
	if err := s.Ingest(cruiseFrame(10)); err != nil {
		t.Fatalf("equal-time frame rejected: %v", err)
	}
	err := s.Ingest(cruiseFrame(3))
	var fe *stream.FrameError
	if !errors.As(err, &fe) || fe.Reason != stream.RejectOutOfOrder {
		t.Fatalf("regressed frame err = %v, want out-of-order *FrameError", err)
	}
	st := s.Stats()
	if st.Frames != 2 || st.Rejected != 1 {
		t.Fatalf("stats = %+v, want 2 accepted / 1 rejected", st)
	}
}

func TestErrorBudgetAbsorbsThenTerminates(t *testing.T) {
	var events []stream.Event
	s := newSession(t, stream.Config{
		ErrorBudget: 3,
		Sink:        func(e stream.Event) { events = append(events, e) },
	})
	for i := 0; i < 3; i++ {
		err := s.IngestLine([]byte("garbage"))
		if err == nil || stream.Terminal(err) {
			t.Fatalf("reject %d: err = %v, want absorbed *FrameError", i, err)
		}
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3 frame-rejected", len(events))
	}
	for i, e := range events {
		if e.Kind != stream.EventFrameRejected || e.Reject == nil {
			t.Fatalf("event %d = %+v, want frame-rejected", i, e)
		}
		if want := 2 - i; e.Reject.BudgetLeft != want {
			t.Fatalf("event %d budget_left = %d, want %d", i, e.Reject.BudgetLeft, want)
		}
	}
	err := s.IngestLine([]byte("garbage"))
	var be *stream.BudgetError
	if !errors.As(err, &be) || !stream.Terminal(err) {
		t.Fatalf("budget-breaking reject err = %v, want terminal *BudgetError", err)
	}
	if be.Rejected != 4 || be.Last == nil {
		t.Fatalf("budget error = %+v", be)
	}
	// The breaking reject emits no event: the caller owns the terminal
	// close, so a stream can still die with a clean HTTP status.
	if len(events) != 3 {
		t.Fatalf("terminal reject emitted an event: %d total", len(events))
	}
}

func TestNegativeBudgetToleratesNothing(t *testing.T) {
	s := newSession(t, stream.Config{ErrorBudget: -1})
	err := s.IngestLine([]byte("garbage"))
	if !stream.Terminal(err) {
		t.Fatalf("first bad line err = %v, want terminal", err)
	}
}

func TestBlankLinesSkippedSilently(t *testing.T) {
	s := newSession(t, stream.Config{ErrorBudget: -1})
	for _, ln := range []string{"", "   ", "\t", "\r"} {
		if err := s.IngestLine([]byte(ln)); err != nil {
			t.Fatalf("blank line %q: %v", ln, err)
		}
	}
	if st := s.Stats(); st.Frames != 0 || st.Rejected != 0 {
		t.Fatalf("stats = %+v, want untouched", st)
	}
}

func TestHeartbeatCadence(t *testing.T) {
	var beats []stream.Event
	s := newSession(t, stream.Config{
		Heartbeat: 5,
		Sink: func(e stream.Event) {
			if e.Kind == stream.EventHeartbeat {
				beats = append(beats, e)
			}
		},
	})
	for k := int64(0); k < 12; k++ {
		if err := s.Ingest(cruiseFrame(k)); err != nil {
			t.Fatal(err)
		}
	}
	if len(beats) != 2 {
		t.Fatalf("got %d heartbeats over 12 frames at cadence 5, want 2", len(beats))
	}
	if beats[0].Frames != 5 || beats[1].Frames != 10 {
		t.Fatalf("heartbeat frame counts = %d, %d, want 5, 10", beats[0].Frames, beats[1].Frames)
	}
	if beats[1].T != cruiseFrame(9).T {
		t.Fatalf("heartbeat t = %g, want %g", beats[1].T, cruiseFrame(9).T)
	}
}

func TestRecentFramesRingWraps(t *testing.T) {
	s := newSession(t, stream.Config{RingSize: 4})
	for k := int64(0); k < 2; k++ {
		if err := s.Ingest(cruiseFrame(k)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.RecentFrames(); len(got) != 2 || got[0].T != 0 || got[1].T != cruiseFrame(1).T {
		t.Fatalf("partial ring = %v frames", len(got))
	}
	for k := int64(2); k < 7; k++ {
		if err := s.Ingest(cruiseFrame(k)); err != nil {
			t.Fatal(err)
		}
	}
	got := s.RecentFrames()
	if len(got) != 4 {
		t.Fatalf("wrapped ring holds %d frames, want 4", len(got))
	}
	for i, f := range got {
		if want := cruiseFrame(int64(3 + i)).T; f.T != want {
			t.Fatalf("ring[%d].T = %g, want %g", i, f.T, want)
		}
	}
}

func TestCloseIsIdempotentAndFinal(t *testing.T) {
	var closes int
	s := newSession(t, stream.Config{Sink: func(e stream.Event) {
		if e.Kind == stream.EventSessionClosed {
			closes++
		}
	}})
	if err := s.Ingest(cruiseFrame(0)); err != nil {
		t.Fatal(err)
	}
	st1 := s.CloseWith(stream.ReasonDrain, 0)
	st2 := s.Close()
	if closes != 1 {
		t.Fatalf("%d session-closed events, want exactly 1", closes)
	}
	if st1 != st2 {
		t.Fatalf("close stats diverged: %+v vs %+v", st1, st2)
	}
	if !s.Closed() {
		t.Fatal("session not marked closed")
	}
	if err := s.Ingest(cruiseFrame(1)); !errors.Is(err, stream.ErrClosed) {
		t.Fatalf("ingest after close err = %v, want ErrClosed", err)
	}
	if err := s.IngestLine([]byte("{}")); !errors.Is(err, stream.ErrClosed) {
		t.Fatalf("ingest-line after close err = %v, want ErrClosed", err)
	}
	if !stream.Terminal(stream.ErrClosed) {
		t.Fatal("ErrClosed must be terminal")
	}
}

func TestConsumeStopsAtTerminalError(t *testing.T) {
	// Budget 1: first garbage line absorbed, second terminal at line 4.
	s := newSession(t, stream.Config{ErrorBudget: 1})
	in := `{"T":1}
garbage one
{"T":2}
garbage two
{"T":3}
`
	err := s.Consume(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("Consume err = %v, want terminal annotated with line 4", err)
	}
	var be *stream.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("Consume err = %v, want *BudgetError in chain", err)
	}
	if st := s.Stats(); st.Frames != 2 || st.Rejected != 2 {
		t.Fatalf("stats = %+v, want 2 accepted / 2 rejected (line 5 never read)", st)
	}
}

func TestConsumeRejectsOverlongLine(t *testing.T) {
	s := newSession(t, stream.Config{})
	long := bytes.Repeat([]byte("x"), stream.MaxLineBytes+2)
	if err := s.Consume(bytes.NewReader(long)); err == nil {
		t.Fatal("over-long line must be a terminal error")
	}
}

func TestSessionStreamsViolations(t *testing.T) {
	// A GNSS freeze on the cruise: the fix stops following the vehicle,
	// so consistency assertions must open an episode mid-stream.
	var opened, closed, diagnosed int
	s := newSession(t, stream.Config{Sink: func(e stream.Event) {
		switch e.Kind {
		case stream.EventViolationOpened:
			opened++
		case stream.EventViolationClosed:
			closed++
		case stream.EventDiagnosis:
			diagnosed++
		}
	}})
	for k := int64(0); k < 400; k++ {
		f := cruiseFrame(k)
		if k >= 100 && k < 200 {
			frozen := cruiseFrame(100)
			f.GNSSX, f.GNSSY = frozen.GNSSX, frozen.GNSSY
			f.GNSSSpeed, f.GNSSCourse = 0, 0
		}
		if err := s.Ingest(f); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Close()
	if opened == 0 {
		t.Fatal("freeze attack opened no episodes")
	}
	if closed == 0 || diagnosed != closed {
		t.Fatalf("closed = %d, diagnosed = %d; every close must publish a diagnosis", closed, diagnosed)
	}
	if st.Violations != int64(opened) {
		t.Fatalf("stats.Violations = %d, opened events = %d", st.Violations, opened)
	}
	if int64(opened-closed) != st.OpenEpisodes {
		t.Fatalf("open episodes = %d, want %d", st.OpenEpisodes, opened-closed)
	}
}
