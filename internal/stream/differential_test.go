package stream_test

import (
	"bytes"
	"encoding/json"
	"io"
	"reflect"
	"testing"

	"adassure"
	"adassure/internal/core"
	"adassure/internal/diagnosis"
	"adassure/internal/offline"
	"adassure/internal/stream"
)

// diffCase is one track/controller/attack combination of the differential
// suite — together the six cases cover every built-in track, four
// controllers, four GNSS attack classes, one actuation fault and one
// clean run (exercising the CauseNone path).
type diffCase struct {
	track      adassure.TrackName
	controller adassure.ControllerName
	attack     adassure.AttackName
}

var diffCases = []diffCase{
	{adassure.TrackUrbanLoop, adassure.ControllerPurePursuit, adassure.AttackDriftSpoof},
	{adassure.TrackSCurve, adassure.ControllerStanley, adassure.AttackStepSpoof},
	{adassure.TrackFigureEight, adassure.ControllerPIDLateral, adassure.AttackFreeze},
	{adassure.TrackDoubleLaneChange, adassure.ControllerLQRMPC, adassure.AttackReplay},
	{adassure.TrackCircle, adassure.ControllerPurePursuit, adassure.AttackStuckSteer},
	{adassure.TrackHairpin, adassure.ControllerStanley, adassure.AttackNone},
}

// record runs one scenario and returns its frame recording.
func record(t *testing.T, c diffCase) *offline.Recording {
	t.Helper()
	res, err := adassure.Scenario{
		Track: c.track, Controller: c.controller, Attack: c.attack,
		AttackStart: 15, AttackEnd: 35,
		Seed: 1, Duration: 40, RecordFrames: true,
	}.Run()
	if err != nil {
		t.Fatalf("%v/%v/%v: %v", c.track, c.controller, c.attack, err)
	}
	rec := res.Recording
	if rec == nil || len(rec.Frames) == 0 {
		t.Fatalf("%v/%v/%v: no frames recorded", c.track, c.controller, c.attack)
	}
	return (*offline.Recording)(rec)
}

// ndjson serialises a recording's frames one JSON object per line — the
// stream wire format.
func ndjson(t *testing.T, frames []core.Frame) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := range frames {
		if err := enc.Encode(&frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// chunkReader yields at most chunk bytes per Read, forcing the consumer
// to reassemble lines across arbitrary read boundaries.
type chunkReader struct {
	data  []byte
	chunk int
}

func (r *chunkReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	n := r.chunk
	if n > len(r.data) {
		n = len(r.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, r.data[:n])
	r.data = r.data[n:]
	return n, nil
}

// TestStreamMatchesBatch is the defining contract of the stream package:
// for every track/controller/attack case, feeding the recorded frames
// through a streaming session — via the typed path and via NDJSON split
// at 1-byte, 7-byte and single-chunk read boundaries — yields a violation
// record deep-equal to offline.Recording.Monitor and ranked hypotheses
// deep-equal to offline.Recording.Diagnose. Along the way every rolling
// diagnosis event is checked against a from-scratch batch diagnosis of
// the violations recorded so far, and the violation record reconstructed
// from opened/closed events is checked against the batch wire forms.
func TestStreamMatchesBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite runs full scenario simulations")
	}
	cfg := core.CatalogConfig{IncludeGroundTruth: true}
	for _, c := range diffCases {
		c := c
		t.Run(string(c.track)+"/"+string(c.attack), func(t *testing.T) {
			t.Parallel()
			rec := record(t, c)
			wantViolations := rec.Monitor(cfg)
			wantHyps := rec.Diagnose(cfg)
			lines := ndjson(t, rec.Frames)

			feeds := []struct {
				name string
				feed func(t *testing.T, s *stream.Session)
			}{
				{"typed", func(t *testing.T, s *stream.Session) {
					for _, f := range rec.Frames {
						if err := s.Ingest(f); err != nil {
							t.Fatal(err)
						}
					}
				}},
				{"ndjson-chunk-1", func(t *testing.T, s *stream.Session) {
					if err := s.Consume(&chunkReader{data: lines, chunk: 1}); err != nil {
						t.Fatal(err)
					}
				}},
				{"ndjson-chunk-7", func(t *testing.T, s *stream.Session) {
					if err := s.Consume(&chunkReader{data: lines, chunk: 7}); err != nil {
						t.Fatal(err)
					}
				}},
				{"ndjson-all", func(t *testing.T, s *stream.Session) {
					if err := s.Consume(bytes.NewReader(lines)); err != nil {
						t.Fatal(err)
					}
				}},
			}
			for _, feed := range feeds {
				feed := feed
				t.Run(feed.name, func(t *testing.T) {
					runDifferential(t, cfg, rec, wantViolations, wantHyps, feed.feed)
				})
			}
		})
	}
}

func runDifferential(t *testing.T, cfg core.CatalogConfig, rec *offline.Recording,
	wantViolations []core.Violation, wantHyps []diagnosis.Hypothesis,
	feed func(*testing.T, *stream.Session)) {
	t.Helper()

	var s *stream.Session
	var events []stream.Event
	sCfg := stream.Config{
		Catalog: cfg,
		Sink: func(e stream.Event) {
			events = append(events, e)
			if e.Kind == stream.EventDiagnosis {
				// Rolling equivalence: every published ranking must match
				// a from-scratch batch diagnosis of the record so far.
				batch := stream.WireHypothesesOf(diagnosis.Diagnose(s.Violations()))
				if !reflect.DeepEqual(e.Hypotheses, batch) {
					t.Errorf("rolling diagnosis at seq %d diverged from batch\n got: %+v\nwant: %+v",
						e.Seq, e.Hypotheses, batch)
				}
			}
		},
	}
	s, err := stream.New(sCfg)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, s)
	stats := s.Close()

	// Invariant 1: the violation record is the batch record, deep-equal.
	if got := s.Violations(); !reflect.DeepEqual(got, wantViolations) {
		t.Fatalf("streamed violations diverged from batch\n got: %d %+v\nwant: %d %+v",
			len(got), got, len(wantViolations), wantViolations)
	}
	// Invariant 2: the final ranking is the batch ranking, deep-equal.
	if got := s.Diagnose(); !reflect.DeepEqual(got, wantHyps) {
		t.Fatalf("streamed diagnosis diverged from batch\n got: %+v\nwant: %+v", got, wantHyps)
	}
	if stats.Frames != int64(len(rec.Frames)) || stats.Rejected != 0 {
		t.Fatalf("stats = %+v, want %d frames and 0 rejected", stats, len(rec.Frames))
	}
	if stats.Violations != int64(len(wantViolations)) {
		t.Fatalf("stats.Violations = %d, want %d", stats.Violations, len(wantViolations))
	}

	// Invariant 3: the event stream carries the record. Reconstruct the
	// wire violations from opened events, fill durations from closed
	// events, and compare with the batch wire forms.
	checkEventTranscript(t, events, wantViolations, wantHyps)
}

func checkEventTranscript(t *testing.T, evs []stream.Event, wantViolations []core.Violation, wantHyps []diagnosis.Hypothesis) {
	t.Helper()
	var opened []stream.WireViolation
	lastSeq := int64(0)
	sawClosed := false
	for _, e := range evs {
		if e.Seq != lastSeq+1 {
			t.Fatalf("event seq gap: %d after %d", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		switch e.Kind {
		case stream.EventViolationOpened:
			opened = append(opened, *e.Violation)
		case stream.EventViolationClosed:
			// Stamp the duration onto the matching open entry, exactly as
			// the monitor stamps its record.
			for i := len(opened) - 1; i >= 0; i-- {
				if opened[i].AssertionID == e.Violation.AssertionID && opened[i].Duration == 0 {
					opened[i].Duration = e.Violation.Duration
					break
				}
			}
		case stream.EventSessionClosed:
			sawClosed = true
			if e.Reason != stream.ReasonEOF {
				t.Errorf("close reason = %q, want %q", e.Reason, stream.ReasonEOF)
			}
			if want := stream.WireHypothesesOf(wantHyps); !reflect.DeepEqual(e.Hypotheses, want) {
				t.Errorf("session-closed hypotheses diverged\n got: %+v\nwant: %+v", e.Hypotheses, want)
			}
		}
	}
	if !sawClosed {
		t.Fatal("no session-closed event delivered")
	}
	wantWire := make([]stream.WireViolation, len(wantViolations))
	for i, v := range wantViolations {
		wantWire[i] = stream.WireViolationOf(v)
	}
	if len(wantWire) == 0 {
		if len(opened) != 0 {
			t.Fatalf("events carry %d violations, batch has none", len(opened))
		}
		return
	}
	if !reflect.DeepEqual(opened, wantWire) {
		t.Fatalf("event-reconstructed violations diverged from batch wire forms\n got: %+v\nwant: %+v", opened, wantWire)
	}
}
