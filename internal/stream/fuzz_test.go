package stream_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"adassure/internal/stream"
)

// FuzzStreamNDJSON drives arbitrary byte streams through the NDJSON
// ingest contract and checks the invariants the stream wire format
// promises: no panic on any input, every non-blank line is either
// accepted as a frame or counted as a rejection (nothing is silently
// dropped), every ingestion error is one of the typed stream errors,
// every emitted event marshals cleanly to JSON, and the scanner-based
// Consume path agrees with line-at-a-time ingestion.
func FuzzStreamNDJSON(f *testing.F) {
	valid, err := json.Marshal(cruiseFrame(1))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(append(valid, '\n'))
	f.Add([]byte("{\"T\":1e999}\n"))                // non-finite via overflow
	f.Add([]byte("null\n"))                         // decodes to nothing — must reject
	f.Add([]byte("garbage\n{\"T\":2}\n"))           // recovery after a bad line
	f.Add([]byte("{\"T\":2}\n{\"T\":1}\n"))         // out-of-order timestamps
	f.Add([]byte("{\"T\":1,\"Bogus\":3}\n"))        // unknown field
	f.Add([]byte("{\"T\":1} {\"T\":2}\n"))          // trailing data on one line
	f.Add([]byte("{\"T\": 1"))                      // truncated object, no newline
	f.Add([]byte("\n \n\t\r\n{\"T\":0.5}\n"))       // keep-alive blanks
	f.Add([]byte("a\nb\nc\nd\ne\n{\"T\":1}\n"))     // budget exhaustion
	f.Add([]byte("{\"T\":\"one\"}\n[1,2]\ntrue\n")) // wrong types

	f.Fuzz(func(t *testing.T, data []byte) {
		var events []stream.Event
		s, err := stream.New(stream.Config{
			ErrorBudget: 3,
			Heartbeat:   2,
			RingSize:    8,
			Sink: func(e stream.Event) {
				events = append(events, e)
				if _, err := json.Marshal(e); err != nil {
					t.Fatalf("event %+v does not marshal: %v", e, err)
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}

		var wantFrames, wantRejected int64
		terminal := false
		for _, line := range bytes.Split(data, []byte("\n")) {
			err := s.IngestLine(line)
			switch {
			case err == nil:
				if len(bytes.TrimSpace(line)) != 0 {
					wantFrames++
				}
			case stream.Terminal(err):
				var be *stream.BudgetError
				if !errors.As(err, &be) && !errors.Is(err, stream.ErrClosed) {
					t.Fatalf("terminal error has unexpected type %T: %v", err, err)
				}
				wantRejected++
				terminal = true
			default:
				var fe *stream.FrameError
				if !errors.As(err, &fe) {
					t.Fatalf("non-terminal error has unexpected type %T: %v", err, err)
				}
				wantRejected++
			}
			if terminal {
				break
			}
		}
		st := s.Close()
		if st.Frames != wantFrames || st.Rejected != wantRejected {
			t.Fatalf("stats = %+v, tallied %d accepted / %d rejected — frames dropped or double-counted",
				st, wantFrames, wantRejected)
		}

		// The Consume path must agree with line-at-a-time ingestion
		// whenever it can read the whole input (over-long lines abort the
		// scanner early, which the per-line path cannot observe).
		s2, err := stream.New(stream.Config{ErrorBudget: 3, Heartbeat: 2, RingSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		cerr := s2.Consume(bytes.NewReader(data))
		if cerr == nil && !terminal {
			if st2 := s2.Stats(); st2.Frames != wantFrames || st2.Rejected != wantRejected {
				t.Fatalf("Consume stats = %+v, per-line tally %d/%d", st2, wantFrames, wantRejected)
			}
		}
		if terminal && cerr == nil {
			t.Fatal("per-line ingestion hit a terminal error but Consume returned nil")
		}
	})
}
