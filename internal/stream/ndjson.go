package stream

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"strings"

	"adassure/internal/core"
)

// Frame lines use the same JSON encoding as a recorded core.Frame, so a
// stored Recording converts to a valid NDJSON stream with nothing more
// than `jq -c '.Frames[]' recording.json`.

// MaxLineBytes bounds one NDJSON input line. A frame line is ~1 KiB at
// full float precision; anything near the limit is garbage, and the
// scanner cannot resynchronise after an over-long line, so exceeding it
// is a terminal error.
const MaxLineBytes = 1 << 20

// Reject reasons carried by FrameError and frame-rejected events.
const (
	RejectSyntax     = "syntax"       // not valid JSON
	RejectNotObject  = "not-object"   // valid JSON but not an object
	RejectSchema     = "schema"       // unknown field or wrong value type
	RejectNonFinite  = "non-finite"   // NaN/Inf (or out-of-range number)
	RejectOutOfOrder = "out-of-order" // frame time regressed
)

// FrameError is one rejected frame: a malformed line or an out-of-order
// timestamp. FrameErrors are charged against the session's error budget
// but are not terminal by themselves — see Terminal.
type FrameError struct {
	Reason string // one of the Reject* constants
	Detail string
}

// Error implements error.
func (e *FrameError) Error() string {
	if e.Detail == "" {
		return "stream: frame rejected (" + e.Reason + ")"
	}
	return "stream: frame rejected (" + e.Reason + "): " + e.Detail
}

// BudgetError is the terminal error returned when a reject exceeds the
// session's malformed-line budget.
type BudgetError struct {
	// Rejected is the total number of rejected frames, including the one
	// that broke the budget.
	Rejected int64
	// Last is the rejection that broke the budget.
	Last *FrameError
}

// Error implements error.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("stream: error budget exhausted after %d rejected frames: %v", e.Rejected, e.Last)
}

// Unwrap exposes the final rejection.
func (e *BudgetError) Unwrap() error { return e.Last }

// ErrClosed is returned by ingestion on a closed session.
var ErrClosed = errors.New("stream: session closed")

// Terminal reports whether an ingestion error ends the session (budget
// exhausted, session closed, or unrecoverable input) as opposed to a
// single rejected frame the session already absorbed.
func Terminal(err error) bool {
	if err == nil {
		return false
	}
	var be *BudgetError
	return errors.Is(err, ErrClosed) || errors.As(err, &be)
}

// ParseFrame decodes one NDJSON line into a Frame under the strict wire
// contract: the line must be a single JSON object with no unknown fields,
// no trailing data, and finite core signals. Every failure is a typed
// *FrameError — malformed input is diagnosed, never silently dropped.
func ParseFrame(line []byte) (core.Frame, error) {
	trimmed := bytes.TrimSpace(line)
	if len(trimmed) == 0 {
		return core.Frame{}, &FrameError{Reason: RejectSyntax, Detail: "empty line"}
	}
	if trimmed[0] != '{' {
		// Catches bare scalars and, importantly, `null` — which
		// encoding/json would otherwise decode into a zero frame without
		// complaint.
		return core.Frame{}, &FrameError{Reason: RejectNotObject, Detail: "line is not a JSON object"}
	}
	dec := json.NewDecoder(bytes.NewReader(trimmed))
	dec.DisallowUnknownFields()
	var f core.Frame
	if err := dec.Decode(&f); err != nil {
		return core.Frame{}, classifyDecodeError(err)
	}
	if dec.More() {
		return core.Frame{}, &FrameError{Reason: RejectSyntax, Detail: "trailing data after frame object"}
	}
	if !f.Finite() {
		return core.Frame{}, &FrameError{Reason: RejectNonFinite, Detail: "non-finite core signal"}
	}
	return f, nil
}

// classifyDecodeError maps encoding/json failures onto reject reasons.
func classifyDecodeError(err error) *FrameError {
	var synErr *json.SyntaxError
	if errors.As(err, &synErr) {
		return &FrameError{Reason: RejectSyntax, Detail: err.Error()}
	}
	var typeErr *json.UnmarshalTypeError
	if errors.As(err, &typeErr) {
		// A JSON number that cannot become a float64 is an overflow —
		// JSON has no literal for ±Inf/NaN, so "number too large" is the
		// wire form of a non-finite value.
		if strings.HasPrefix(typeErr.Value, "number") && typeErr.Type != nil && typeErr.Type.Kind() == reflect.Float64 {
			return &FrameError{Reason: RejectNonFinite, Detail: err.Error()}
		}
		return &FrameError{Reason: RejectSchema, Detail: err.Error()}
	}
	if strings.Contains(err.Error(), "unknown field") {
		return &FrameError{Reason: RejectSchema, Detail: err.Error()}
	}
	return &FrameError{Reason: RejectSyntax, Detail: err.Error()}
}
