package stream

import (
	"math"

	"adassure/internal/core"
	"adassure/internal/diagnosis"
)

// EventKind discriminates the typed events a Session emits.
type EventKind string

// Event kinds, in the order a subscriber typically sees them.
const (
	// EventViolationOpened fires when the monitor raises a debounced
	// episode; the event carries the violation with Duration still zero.
	EventViolationOpened EventKind = "violation-opened"
	// EventViolationClosed fires when an episode's window runs fully
	// clean; the violation now carries its final duration.
	EventViolationClosed EventKind = "violation-closed"
	// EventDiagnosis follows every violation-closed event with the
	// rolling root-cause ranking over everything observed so far.
	EventDiagnosis EventKind = "diagnosis"
	// EventHeartbeat fires every Config.Heartbeat ingested frames.
	EventHeartbeat EventKind = "heartbeat"
	// EventFrameRejected reports one malformed input line that was
	// charged against the session's error budget.
	EventFrameRejected EventKind = "frame-rejected"
	// EventSessionClosed is the last event of a session: the close
	// reason, final statistics and final hypothesis ranking.
	EventSessionClosed EventKind = "session-closed"
)

// Session close reasons carried by EventSessionClosed.
const (
	ReasonEOF      = "eof"            // input stream ended normally
	ReasonDrain    = "drain"          // server shutting down gracefully
	ReasonBudget   = "error-budget"   // malformed-line budget exhausted
	ReasonDuration = "duration-limit" // session exceeded its max duration
	ReasonClient   = "client"         // client went away mid-stream
)

// Event is one entry of a session's NDJSON event stream. The JSON field
// order is fixed by the struct, all maps marshal with sorted keys, and no
// wall-clock values appear — encoding an event stream is deterministic in
// the ingested frames, which is what lets the service golden-test whole
// transcripts and the differential suite compare streamed output against
// batch output byte for byte.
type Event struct {
	Kind EventKind `json:"event"`
	// Seq numbers delivered events from 1; a subscriber can detect a gap.
	Seq int64 `json:"seq"`
	// T is the frame time the event refers to (last ingested frame time
	// for heartbeat/rejected/closed events).
	T float64 `json:"t"`
	// Frames is the ingest count (heartbeat and session-closed events).
	Frames int64 `json:"frames,omitempty"`
	// Violations is the episode count so far (heartbeat events).
	Violations int64 `json:"violations,omitempty"`
	// OpenEpisodes counts episodes currently open (heartbeat events).
	OpenEpisodes int64 `json:"open_episodes,omitempty"`
	// Violation carries the episode for violation-opened/-closed events.
	Violation *WireViolation `json:"violation,omitempty"`
	// Hypotheses is the rolling ranking (diagnosis and session-closed).
	Hypotheses []WireHypothesis `json:"hypotheses,omitempty"`
	// Reject describes the bad line for frame-rejected events.
	Reject *WireReject `json:"reject,omitempty"`
	// Reason and Code close out the session (session-closed events); Code
	// is an HTTP-style status for terminal limit breaches, 0 otherwise.
	Reason string `json:"reason,omitempty"`
	Code   int    `json:"code,omitempty"`
	// Stats summarises the whole session (session-closed events).
	Stats *Stats `json:"stats,omitempty"`
}

// WireViolation is the JSON form of one raised assertion episode —
// field-for-field the same shape the batch service response uses, so a
// client can compare streamed and batch results structurally.
type WireViolation struct {
	AssertionID string             `json:"assertion_id"`
	Name        string             `json:"name"`
	Severity    string             `json:"severity"`
	T           float64            `json:"t"`
	FirstBreach float64            `json:"first_breach"`
	Duration    float64            `json:"duration,omitempty"`
	Message     string             `json:"message"`
	Evidence    map[string]float64 `json:"evidence,omitempty"`
}

// WireHypothesis is the JSON form of one ranked root-cause candidate.
type WireHypothesis struct {
	Cause      string  `json:"cause"`
	Confidence float64 `json:"confidence"`
	Rationale  string  `json:"rationale"`
}

// WireReject describes one rejected input line.
type WireReject struct {
	Reason string `json:"reason"`
	Detail string `json:"detail,omitempty"`
	// BudgetLeft is how many further bad lines the session will tolerate.
	BudgetLeft int `json:"budget_left"`
}

// WireViolationOf converts a monitor violation to its wire form,
// sanitizing non-finite evidence exactly like the batch service response
// (±Inf thresholds clamp to ±MaxFloat64, NaN entries drop) so streamed
// and batch violations compare deep-equal.
func WireViolationOf(v core.Violation) WireViolation {
	return WireViolation{
		AssertionID: v.AssertionID,
		Name:        v.Name,
		Severity:    v.Severity.String(),
		T:           v.T,
		FirstBreach: v.FirstBreach,
		Duration:    v.Duration,
		Message:     v.Message,
		Evidence:    sanitizeEvidence(v.Evidence),
	}
}

// WireHypothesesOf converts a ranked hypothesis list to its wire form.
func WireHypothesesOf(hs []diagnosis.Hypothesis) []WireHypothesis {
	if len(hs) == 0 {
		return nil
	}
	out := make([]WireHypothesis, len(hs))
	for i, h := range hs {
		out[i] = WireHypothesis{
			Cause:      string(h.Cause),
			Confidence: h.Confidence,
			Rationale:  h.Rationale,
		}
	}
	return out
}

// sanitizeEvidence mirrors the batch response treatment of non-finite
// evidence values — encoding/json rejects them outright.
func sanitizeEvidence(ev map[string]float64) map[string]float64 {
	if len(ev) == 0 {
		return nil
	}
	cp := make(map[string]float64, len(ev))
	for k, v := range ev {
		switch {
		case math.IsNaN(v):
		case math.IsInf(v, 1):
			cp[k] = math.MaxFloat64
		case math.IsInf(v, -1):
			cp[k] = -math.MaxFloat64
		default:
			cp[k] = v
		}
	}
	return cp
}
