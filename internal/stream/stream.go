// Package stream turns the batch assertion pipeline into an online
// monitoring session: frames arrive one at a time from an unbounded
// stream, each is pushed through the same core.Monitor the batch path
// uses, and diagnosis is maintained incrementally (diagnosis.
// RunningSignature) instead of being recomputed from the record — so the
// per-frame cost is bounded no matter how long the session runs.
//
// The defining contract, enforced by the differential suite in this
// package: a Session fed the same frames as a batch run produces exactly
// the same violation record and exactly the same ranked hypotheses —
// streaming is a delivery mechanism, never a different answer. The
// carve-out making that possible: the monitor's violation record is the
// analysis product and is retained in full (it grows with violations, not
// with frames); everything per-frame — the debounce windows, the
// incremental signature, the flight-recorder ring of recent raw frames —
// is fixed-size.
//
// A session is single-writer: Ingest/IngestLine/Consume/Close must be
// called from one goroutine. Stats is safe to call concurrently with
// ingestion (atomics only), which is what lets a server report on live
// sessions.
package stream

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"sync/atomic"

	"adassure/internal/core"
	"adassure/internal/diagnosis"
	"adassure/internal/events"
	"adassure/internal/obs"
)

// Defaults.
const (
	DefaultRingSize    = 256
	DefaultErrorBudget = 10
)

// Config parameterises a streaming session.
type Config struct {
	// Catalog configures the assertion catalog (zero value = defaults).
	Catalog core.CatalogConfig
	// Assertions restricts the catalog to a subset of IDs; empty loads
	// the full catalog.
	Assertions []string
	// RingSize is the flight-recorder capacity in frames (the most recent
	// raw frames kept for forensic inspection). 0 means DefaultRingSize.
	RingSize int
	// Heartbeat emits a heartbeat event every N ingested frames; 0
	// disables heartbeats.
	Heartbeat int
	// ErrorBudget is how many malformed input lines the session tolerates
	// before closing with a BudgetError. 0 means DefaultErrorBudget; a
	// negative value tolerates none.
	ErrorBudget int
	// Sink receives every emitted event, synchronously from the ingest
	// goroutine. Nil drops events (the session still monitors and
	// diagnoses; Violations/Diagnose stay available).
	Sink func(Event)
	// Obs wires the session and its monitor to a metrics registry (nil =
	// uninstrumented).
	Obs *obs.Registry
	// Events wires violation episodes to a timeline recorder under the
	// given scope prefix (nil = no recording).
	Events     *events.Recorder
	EventScope string
}

// Stats is a point-in-time summary of a session. Safe to read while
// another goroutine ingests.
type Stats struct {
	// Frames counts accepted frames; Rejected counts frames refused by
	// the NDJSON contract or time-ordering check.
	Frames   int64 `json:"frames"`
	Rejected int64 `json:"rejected,omitempty"`
	// Violations counts raised episodes; OpenEpisodes those still open.
	Violations   int64 `json:"violations"`
	OpenEpisodes int64 `json:"open_episodes"`
	// LastT is the timestamp of the last accepted frame.
	LastT float64 `json:"last_t"`
}

// Session is one incremental monitoring session over a frame stream.
type Session struct {
	cfg Config
	mon *core.Monitor
	sig *diagnosis.RunningSignature

	ring   []core.Frame
	budget int
	seq    int64
	lastT  float64
	haveT  bool
	closed bool

	// Concurrent-read stats (Stats() may race with ingestion).
	frames    atomic.Int64
	rejected  atomic.Int64
	violCount atomic.Int64
	openCount atomic.Int64
	lastTBits atomic.Uint64

	framesCtr, rejectedCtr, violCtr *obs.Counter
}

// New builds a session. The returned session has ingested nothing; feed
// it with Ingest (typed frames), IngestLine (one NDJSON line) or Consume
// (a whole NDJSON reader), then Close it.
func New(cfg Config) (*Session, error) {
	mon, err := core.NewCatalogMonitorWith(cfg.Catalog, cfg.Assertions)
	if err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = DefaultRingSize
	}
	budget := cfg.ErrorBudget
	switch {
	case budget == 0:
		budget = DefaultErrorBudget
	case budget < 0:
		budget = 0
	}
	s := &Session{
		cfg:    cfg,
		mon:    mon,
		sig:    diagnosis.NewRunningSignature(),
		ring:   make([]core.Frame, cfg.RingSize),
		budget: budget,
	}
	mon.Attach(cfg.Obs)
	if cfg.Events != nil {
		mon.AttachEvents(cfg.Events, cfg.EventScope)
	}
	mon.SetEpisodeHooks(s.onOpen, s.onClose)
	s.framesCtr = cfg.Obs.Counter("stream.frames")
	s.rejectedCtr = cfg.Obs.Counter("stream.frames_rejected")
	s.violCtr = cfg.Obs.Counter("stream.violations")
	return s, nil
}

// onOpen runs synchronously inside Monitor.Step when an episode is
// raised: fold it into the running signature and publish it.
func (s *Session) onOpen(v core.Violation) {
	s.sig.Observe(v)
	s.violCount.Add(1)
	s.openCount.Add(1)
	s.violCtr.Inc()
	wv := WireViolationOf(v)
	s.emit(Event{Kind: EventViolationOpened, T: v.T, Violation: &wv})
}

// onClose runs when an episode's window clears: retire it in the
// signature, publish the completed violation, then publish the rolling
// diagnosis — the "hypothesis ranked" moment of the stream.
func (s *Session) onClose(v core.Violation) {
	s.sig.CloseEpisode(v.AssertionID, v.Duration)
	s.openCount.Add(-1)
	wv := WireViolationOf(v)
	closeT := v.T + v.Duration
	s.emit(Event{Kind: EventViolationClosed, T: closeT, Violation: &wv})
	s.emit(Event{Kind: EventDiagnosis, T: closeT, Hypotheses: WireHypothesesOf(s.sig.Diagnose())})
}

// emit numbers and delivers one event.
func (s *Session) emit(e Event) {
	if s.cfg.Sink == nil {
		return
	}
	s.seq++
	e.Seq = s.seq
	s.cfg.Sink(e)
}

// Ingest feeds one typed frame. The clean-frame path performs no heap
// allocation (pinned by TestSessionIngestAllocs); only episode
// transitions and heartbeats allocate, to build their events. A frame
// whose time regresses below the previous frame's is rejected with a
// *FrameError (equal times are allowed, matching offline.Recording
// validation); on a closed session Ingest returns ErrClosed.
func (s *Session) Ingest(f core.Frame) error {
	if s.closed {
		return ErrClosed
	}
	if s.haveT && f.T < s.lastT {
		return s.reject(&FrameError{
			Reason: RejectOutOfOrder,
			Detail: fmt.Sprintf("frame time %g regressed below %g", f.T, s.lastT),
		})
	}
	s.lastT, s.haveT = f.T, true
	s.lastTBits.Store(math.Float64bits(f.T))
	n := s.frames.Add(1)
	s.framesCtr.Inc()
	s.ring[int((n-1)%int64(len(s.ring)))] = f
	s.mon.Step(f) // episode hooks fire in here
	if hb := s.cfg.Heartbeat; hb > 0 && n%int64(hb) == 0 {
		s.emit(Event{
			Kind:         EventHeartbeat,
			T:            f.T,
			Frames:       n,
			Violations:   s.violCount.Load(),
			OpenEpisodes: s.openCount.Load(),
		})
	}
	return nil
}

// reject charges one bad frame against the error budget. While budget
// remains the rejection is absorbed: a frame-rejected event is emitted
// and the returned *FrameError is informational. Once the budget is gone
// the reject is terminal — a *BudgetError is returned (and no event
// emitted for it: the caller owns the terminal close, so a stream that
// dies on its very first line can still fail with a clean HTTP status
// before any event bytes are written).
func (s *Session) reject(fe *FrameError) error {
	rejected := s.rejected.Add(1)
	s.rejectedCtr.Inc()
	if s.budget <= 0 {
		return &BudgetError{Rejected: rejected, Last: fe}
	}
	s.budget--
	s.emit(Event{
		Kind: EventFrameRejected,
		T:    s.lastT,
		Reject: &WireReject{
			Reason:     fe.Reason,
			Detail:     fe.Detail,
			BudgetLeft: s.budget,
		},
	})
	return fe
}

// IngestLine feeds one NDJSON line. Blank lines are skipped (keep-alive
// newlines are legal NDJSON); anything else either parses to a frame and
// goes through Ingest, or is charged against the error budget.
func (s *Session) IngestLine(line []byte) error {
	if s.closed {
		return ErrClosed
	}
	if isBlank(line) {
		return nil
	}
	f, err := ParseFrame(line)
	if err != nil {
		var fe *FrameError
		if !errors.As(err, &fe) {
			fe = &FrameError{Reason: RejectSyntax, Detail: err.Error()}
		}
		return s.reject(fe)
	}
	return s.Ingest(f)
}

// Consume reads an entire NDJSON stream, ingesting line by line until
// EOF or a terminal error. Non-terminal rejects are absorbed (budget
// permitting) and reading continues. The returned error is nil on EOF,
// otherwise the terminal error annotated with the 1-based line number.
func (s *Session) Consume(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), MaxLineBytes)
	line := 0
	for sc.Scan() {
		line++
		if err := s.IngestLine(sc.Bytes()); err != nil && Terminal(err) {
			return fmt.Errorf("stream: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("stream: line %d: %w", line+1, err)
	}
	return nil
}

// Close ends the session normally (reason "eof").
func (s *Session) Close() Stats { return s.CloseWith(ReasonEOF, 0) }

// CloseWith ends the session with an explicit reason and optional
// HTTP-style status code, emitting the final session-closed event with
// the session stats and the final hypothesis ranking. Closing an
// already-closed session is a no-op returning the final stats. Episodes
// still open stay open — their recorded Duration is zero, exactly as in
// a batch record that ends mid-episode.
func (s *Session) CloseWith(reason string, code int) Stats {
	st := s.Stats()
	if s.closed {
		return st
	}
	s.closed = true
	if s.cfg.Events != nil {
		s.mon.FinishEvents(s.lastT)
	}
	stCopy := st
	s.emit(Event{
		Kind:       EventSessionClosed,
		T:          s.lastT,
		Frames:     st.Frames,
		Reason:     reason,
		Code:       code,
		Hypotheses: WireHypothesesOf(s.sig.Diagnose()),
		Stats:      &stCopy,
	})
	return st
}

// Closed reports whether the session has been closed.
func (s *Session) Closed() bool { return s.closed }

// Stats returns a point-in-time summary. Safe to call from any
// goroutine while ingestion is running.
func (s *Session) Stats() Stats {
	return Stats{
		Frames:       s.frames.Load(),
		Rejected:     s.rejected.Load(),
		Violations:   s.violCount.Load(),
		OpenEpisodes: s.openCount.Load(),
		LastT:        math.Float64frombits(s.lastTBits.Load()),
	}
}

// Violations returns the full violation record so far, in raise order —
// identical to what a batch Monitor over the same frames records. Ingest
// goroutine only.
func (s *Session) Violations() []core.Violation { return s.mon.Violations() }

// Diagnose returns the rolling root-cause ranking — identical to batch
// diagnosis over the current violation record. Ingest goroutine only.
func (s *Session) Diagnose() []diagnosis.Hypothesis { return s.sig.Diagnose() }

// RecentFrames copies the flight recorder: the last min(ingested,
// RingSize) accepted frames in arrival order. Ingest goroutine only.
func (s *Session) RecentFrames() []core.Frame {
	n := s.frames.Load()
	size := int64(len(s.ring))
	if n < size {
		out := make([]core.Frame, n)
		copy(out, s.ring[:n])
		return out
	}
	out := make([]core.Frame, size)
	start := int(n % size)
	copy(out, s.ring[start:])
	copy(out[int(size)-start:], s.ring[:start])
	return out
}

// isBlank reports whether the line is empty or all ASCII whitespace.
func isBlank(line []byte) bool {
	for _, b := range line {
		switch b {
		case ' ', '\t', '\r', '\n':
		default:
			return false
		}
	}
	return true
}
