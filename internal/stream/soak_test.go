package stream_test

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"adassure/internal/stream"
)

// TestSessionSoakConcurrentStats soaks one session with the equivalent of
// a multi-minute drive replayed at high acceleration — far more frames
// than the flight-recorder ring holds — while two goroutines hammer
// Stats() the whole time. Run under -race this proves the concurrent-read
// contract; the ReadMemStats ceiling proves memory stays bounded no
// matter how long the stream runs (the "unbounded stream, bounded
// memory" half of the package contract).
func TestSessionSoakConcurrentStats(t *testing.T) {
	if testing.Short() {
		t.Skip("soak ingests a long accelerated session")
	}
	const frames = 60_000 // 50 simulated minutes at 20 Hz

	var heartbeats atomic.Int64
	s, err := stream.New(stream.Config{
		Heartbeat: 1000,
		RingSize:  256,
		Sink: func(e stream.Event) {
			if e.Kind == stream.EventHeartbeat {
				heartbeats.Add(1)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	var polls atomic.Int64
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last int64
			for {
				select {
				case <-done:
					return
				default:
				}
				st := s.Stats()
				if st.Frames < last {
					t.Errorf("frame counter regressed: %d after %d", st.Frames, last)
					return
				}
				last = st.Frames
				polls.Add(1)
			}
		}()
	}

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	for k := int64(0); k < frames; k++ {
		if err := s.Ingest(cruiseFrame(k)); err != nil {
			t.Fatal(err)
		}
	}
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	close(done)
	wg.Wait()
	st := s.Close()

	if st.Frames != frames {
		t.Fatalf("ingested %d frames, want %d", st.Frames, frames)
	}
	if st.Violations != 0 {
		t.Fatalf("clean cruise raised %d violations — steady-state precondition broken", st.Violations)
	}
	if got := heartbeats.Load(); got != frames/1000 {
		t.Fatalf("heartbeats = %d, want %d", got, frames/1000)
	}
	if polls.Load() == 0 {
		t.Fatal("stats pollers never ran")
	}
	// The session's live state is the ring (256 frames ≈ 100 KiB) plus
	// O(assertions) bookkeeping. Allow generous slack for heap noise from
	// the pollers and GC bookkeeping; 60k ingested frames would occupy
	// tens of MiB if the session were buffering them.
	const ceiling = 8 << 20
	if grew := int64(after.HeapAlloc) - int64(before.HeapAlloc); grew > ceiling {
		t.Fatalf("heap grew %d bytes over %d frames, want < %d — session is buffering the stream",
			grew, frames, ceiling)
	}
}

// TestSessionIngestAllocs pins the zero-allocation steady-state ingest
// contract: once warmed up, pushing a clean frame through the session —
// ring write, monitor step across the full catalog, stats update —
// allocates nothing. Setup and warm-up cost is excluded by differencing
// two run lengths, the same idiom the sim hot-path test uses.
func TestSessionIngestAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement needs long runs")
	}
	s, err := stream.New(stream.Config{})
	if err != nil {
		t.Fatal(err)
	}
	next := int64(0)
	// Warm up: first frames populate Rate-assertion history and any lazy
	// state.
	for ; next < 100; next++ {
		if err := s.Ingest(cruiseFrame(next)); err != nil {
			t.Fatal(err)
		}
	}
	allocsFor := func(frames int64) float64 {
		return testing.AllocsPerRun(1, func() {
			end := next + frames
			for ; next < end; next++ {
				if err := s.Ingest(cruiseFrame(next)); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
	short := allocsFor(500)
	long := allocsFor(4500)
	perFrame := (long - short) / 4000
	if perFrame > 0.001 {
		t.Errorf("steady-state ingest costs %.4f allocs/frame (short=%.0f long=%.0f), want 0",
			perFrame, short, long)
	}
	if st := s.Stats(); st.Violations != 0 {
		t.Fatalf("clean cruise raised %d violations — measurement invalid", st.Violations)
	}
}

// BenchmarkSessionIngest measures the per-frame streaming overhead the
// EXPERIMENTS note quotes against batch monitoring.
func BenchmarkSessionIngest(b *testing.B) {
	s, err := stream.New(stream.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Ingest(cruiseFrame(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
