package coverage

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// DatasetColumns returns the feature schema used by WriteDatasetCSV for a
// given assertion-ID universe: per assertion, episode count, longest
// episode duration and first post-onset latency, plus the label column.
func DatasetColumns(ids []string) []string {
	cols := []string{"label", "onset"}
	for _, id := range ids {
		cols = append(cols,
			id+"_episodes",
			id+"_max_duration",
			id+"_first_latency",
		)
	}
	return cols
}

// WriteDatasetCSV exports the corpus as a labelled feature table — one row
// per run — for external analysis or ML tooling. ids fixes the column
// universe (pass the registered catalog IDs for a stable schema). Missing
// features are encoded as 0 (episodes), 0 (duration) and -1 (latency,
// meaning "never fired post-onset"); episodes still open at end of run get
// duration -1.
func WriteDatasetCSV(w io.Writer, runs []Run, ids []string) error {
	if len(runs) == 0 {
		return fmt.Errorf("coverage: empty corpus")
	}
	if len(ids) == 0 {
		return fmt.Errorf("coverage: dataset needs an assertion-ID universe")
	}
	sorted := make([]string, len(ids))
	copy(sorted, ids)
	sort.Strings(sorted)

	cw := csv.NewWriter(w)
	if err := cw.Write(DatasetColumns(sorted)); err != nil {
		return fmt.Errorf("coverage: write header: %w", err)
	}
	ff := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, r := range runs {
		episodes := map[string]int{}
		maxDur := map[string]float64{}
		firstLat := map[string]float64{}
		for _, v := range r.Violations {
			episodes[v.AssertionID]++
			d := v.Duration
			if d == 0 {
				d = math.Inf(1) // still open at end of run
			}
			if d > maxDur[v.AssertionID] {
				maxDur[v.AssertionID] = d
			}
			if r.Onset >= 0 && v.T >= r.Onset {
				lat := v.T - r.Onset
				if old, ok := firstLat[v.AssertionID]; !ok || lat < old {
					firstLat[v.AssertionID] = lat
				}
			}
		}
		row := []string{r.Label, ff(r.Onset)}
		for _, id := range sorted {
			row = append(row, strconv.Itoa(episodes[id]))
			row = append(row, ff(boundedDuration(maxDur[id])))
			if lat, ok := firstLat[id]; ok {
				row = append(row, ff(lat))
			} else {
				row = append(row, "-1")
			}
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("coverage: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// boundedDuration clamps +Inf (open episodes in Signature form) for CSV.
func boundedDuration(d float64) float64 {
	if math.IsInf(d, 1) {
		return -1
	}
	return d
}
