// Package coverage analyses the quality of an assertion catalog over a
// corpus of labelled runs: which assertions carry detection weight, which
// never fire (dead weight), which are redundant with each other, and which
// are unique first detectors. This is the "assertion assessment" analysis
// an assertion-based methodology uses to justify (or prune) its catalog.
package coverage

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"adassure/internal/core"
)

// Run is one labelled violation record in the corpus.
type Run struct {
	// Label identifies the scenario (e.g. the attack class or "clean").
	Label string
	// Onset is the incident onset time; negative for clean runs.
	Onset float64
	// Violations is the monitor record.
	Violations []core.Violation
}

// AssertionStats summarises one assertion's utility over the corpus.
type AssertionStats struct {
	ID string
	// Episodes is the total episode count across runs.
	Episodes int
	// RunsFired is the number of runs with ≥1 post-onset episode.
	RunsFired int
	// LabelsCovered is the number of distinct labels detected.
	LabelsCovered int
	// FirstDetector counts runs where this assertion raised the earliest
	// post-onset violation.
	FirstDetector int
	// SoleDetector counts runs where it was the only firing assertion.
	SoleDetector int
	// FalsePositives counts pre-onset (or clean-run) episodes.
	FalsePositives int
	// MeanLatency is the average detection latency over runs where it
	// fired post-onset (its own first episode, not the catalog's).
	MeanLatency float64
}

// Report is the full corpus analysis.
type Report struct {
	// PerAssertion is sorted by descending utility (first-detector count,
	// then labels covered, then episodes).
	PerAssertion []AssertionStats
	// Dead lists registered assertions that never fired post-onset. Only
	// populated when the registered set is supplied to Analyze.
	Dead []string
	// Redundant lists pairs whose post-onset firing patterns across runs
	// are near-identical (Jaccard ≥ 0.9 over runs, both ≥ 3 runs).
	Redundant []RedundantPair
	// Runs is the corpus size.
	Runs int
}

// RedundantPair is two assertions with near-identical firing patterns.
type RedundantPair struct {
	A, B    string
	Jaccard float64
}

// Analyze computes the corpus report. registered optionally supplies the
// full catalog IDs so dead assertions can be named; pass nil to skip.
func Analyze(runs []Run, registered []string) (*Report, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("coverage: empty corpus")
	}
	type acc struct {
		stats    AssertionStats
		labels   map[string]bool
		fired    map[int]bool // run index → fired post-onset
		latSum   float64
		latCount int
	}
	accs := map[string]*acc{}
	get := func(id string) *acc {
		a, ok := accs[id]
		if !ok {
			a = &acc{stats: AssertionStats{ID: id}, labels: map[string]bool{}, fired: map[int]bool{}}
			accs[id] = a
		}
		return a
	}

	for i, r := range runs {
		firstT := math.Inf(1)
		firstID := ""
		firedIDs := map[string]float64{} // id → its first post-onset raise
		for _, v := range r.Violations {
			a := get(v.AssertionID)
			a.stats.Episodes++
			if r.Onset >= 0 && v.T >= r.Onset {
				if _, seen := firedIDs[v.AssertionID]; !seen {
					firedIDs[v.AssertionID] = v.T
				}
				if v.T < firstT {
					firstT, firstID = v.T, v.AssertionID
				}
			} else {
				a.stats.FalsePositives++
			}
		}
		for id, t0 := range firedIDs {
			a := get(id)
			a.stats.RunsFired++
			a.labels[r.Label] = true
			a.fired[i] = true
			a.latSum += t0 - r.Onset
			a.latCount++
		}
		if firstID != "" {
			get(firstID).stats.FirstDetector++
			if len(firedIDs) == 1 {
				get(firstID).stats.SoleDetector++
			}
		}
	}

	rep := &Report{Runs: len(runs)}
	for _, a := range accs {
		a.stats.LabelsCovered = len(a.labels)
		if a.latCount > 0 {
			a.stats.MeanLatency = a.latSum / float64(a.latCount)
		}
		rep.PerAssertion = append(rep.PerAssertion, a.stats)
	}
	sort.Slice(rep.PerAssertion, func(i, j int) bool {
		a, b := rep.PerAssertion[i], rep.PerAssertion[j]
		if a.FirstDetector != b.FirstDetector {
			return a.FirstDetector > b.FirstDetector
		}
		if a.LabelsCovered != b.LabelsCovered {
			return a.LabelsCovered > b.LabelsCovered
		}
		if a.Episodes != b.Episodes {
			return a.Episodes > b.Episodes
		}
		return a.ID < b.ID
	})

	// Dead assertions.
	firedSet := map[string]bool{}
	for _, s := range rep.PerAssertion {
		if s.RunsFired > 0 {
			firedSet[s.ID] = true
		}
	}
	for _, id := range registered {
		if !firedSet[id] {
			rep.Dead = append(rep.Dead, id)
		}
	}
	sort.Strings(rep.Dead)

	// Redundancy: Jaccard over per-run fired sets.
	ids := make([]string, 0, len(accs))
	for id := range accs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			a, b := accs[ids[i]], accs[ids[j]]
			if len(a.fired) < 3 || len(b.fired) < 3 {
				continue
			}
			inter, union := 0, 0
			seen := map[int]bool{}
			for r := range a.fired {
				seen[r] = true
				if b.fired[r] {
					inter++
				}
			}
			for r := range b.fired {
				seen[r] = true
			}
			union = len(seen)
			if union == 0 {
				continue
			}
			jac := float64(inter) / float64(union)
			if jac >= 0.9 {
				rep.Redundant = append(rep.Redundant, RedundantPair{A: ids[i], B: ids[j], Jaccard: jac})
			}
		}
	}
	return rep, nil
}

// Render writes the report as aligned plain text.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Assertion-catalog utility over %d runs\n", r.Runs)
	fmt.Fprintf(&b, "%-5s %9s %10s %7s %6s %6s %4s %8s\n",
		"id", "episodes", "runsFired", "labels", "first", "sole", "FP", "meanLat")
	for _, s := range r.PerAssertion {
		fmt.Fprintf(&b, "%-5s %9d %10d %7d %6d %6d %4d %7.2fs\n",
			s.ID, s.Episodes, s.RunsFired, s.LabelsCovered, s.FirstDetector, s.SoleDetector, s.FalsePositives, s.MeanLatency)
	}
	if len(r.Dead) > 0 {
		fmt.Fprintf(&b, "dead (never fired post-onset): %s\n", strings.Join(r.Dead, " "))
	}
	for _, p := range r.Redundant {
		fmt.Fprintf(&b, "redundant pair: %s ~ %s (jaccard %.2f)\n", p.A, p.B, p.Jaccard)
	}
	return b.String()
}
