package coverage

import (
	"bytes"
	"strings"
	"testing"

	"adassure/internal/core"
)

func viol(id string, t float64) core.Violation {
	return core.Violation{AssertionID: id, T: t, Duration: 0.5}
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(nil, nil); err == nil {
		t.Error("empty corpus accepted")
	}
}

func TestAnalyzeBasicStats(t *testing.T) {
	runs := []Run{
		{Label: "step", Onset: 20, Violations: []core.Violation{viol("A1", 20.1), viol("A10", 20.3)}},
		{Label: "step", Onset: 20, Violations: []core.Violation{viol("A1", 20.2)}},
		{Label: "drift", Onset: 20, Violations: []core.Violation{viol("A13", 26.5), viol("A1", 50.1)}},
		{Label: "clean", Onset: -1, Violations: []core.Violation{viol("A3", 5)}},
	}
	rep, err := Analyze(runs, []string{"A1", "A3", "A10", "A13", "A99"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs != 4 {
		t.Errorf("runs = %d", rep.Runs)
	}
	find := func(id string) AssertionStats {
		for _, s := range rep.PerAssertion {
			if s.ID == id {
				return s
			}
		}
		t.Fatalf("no stats for %s", id)
		return AssertionStats{}
	}
	a1 := find("A1")
	if a1.Episodes != 3 || a1.RunsFired != 3 || a1.FirstDetector != 2 {
		t.Errorf("A1 stats = %+v", a1)
	}
	if a1.LabelsCovered != 2 { // step + drift (late snap)
		t.Errorf("A1 labels = %d", a1.LabelsCovered)
	}
	a13 := find("A13")
	if a13.FirstDetector != 1 || a13.SoleDetector != 0 {
		t.Errorf("A13 stats = %+v", a13)
	}
	// The second step run has only A1 → sole detector there.
	if a1.SoleDetector != 1 {
		t.Errorf("A1 sole = %d, want 1", a1.SoleDetector)
	}
	// Clean-run A3 episode counts as a false positive.
	a3 := find("A3")
	if a3.FalsePositives != 1 || a3.RunsFired != 0 {
		t.Errorf("A3 stats = %+v", a3)
	}
	// A99 registered but never fired → dead.
	if len(rep.Dead) == 0 || rep.Dead[len(rep.Dead)-1] != "A99" {
		t.Errorf("dead = %v", rep.Dead)
	}
}

func TestAnalyzeLatency(t *testing.T) {
	runs := []Run{
		{Label: "x", Onset: 10, Violations: []core.Violation{viol("A1", 11), viol("A1", 15)}},
		{Label: "x", Onset: 10, Violations: []core.Violation{viol("A1", 13)}},
	}
	rep, err := Analyze(runs, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Latencies: first episodes at 1 s and 3 s → mean 2 s.
	if got := rep.PerAssertion[0].MeanLatency; got != 2 {
		t.Errorf("mean latency = %g, want 2", got)
	}
}

func TestAnalyzeRedundancy(t *testing.T) {
	// A1 and A10 co-fire in all 4 runs; A5 fires in different runs.
	var runs []Run
	for i := 0; i < 4; i++ {
		runs = append(runs, Run{Label: "x", Onset: 10, Violations: []core.Violation{
			viol("A1", 11), viol("A10", 11.2),
		}})
	}
	runs = append(runs, Run{Label: "y", Onset: 10, Violations: []core.Violation{viol("A5", 11)}})
	rep, err := Analyze(runs, nil)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range rep.Redundant {
		if (p.A == "A1" && p.B == "A10") || (p.A == "A10" && p.B == "A1") {
			found = true
			if p.Jaccard != 1 {
				t.Errorf("jaccard = %g", p.Jaccard)
			}
		}
	}
	if !found {
		t.Errorf("A1/A10 redundancy not detected: %v", rep.Redundant)
	}
}

func TestRenderReport(t *testing.T) {
	runs := []Run{{Label: "x", Onset: 10, Violations: []core.Violation{viol("A1", 11)}}}
	rep, err := Analyze(runs, []string{"A1", "A2"})
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Render()
	for _, want := range []string{"utility over 1 runs", "A1", "dead (never fired post-onset): A2"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDatasetCSV(t *testing.T) {
	runs := []Run{
		{Label: "step", Onset: 20, Violations: []core.Violation{
			{AssertionID: "A1", T: 20.1, Duration: 0.3},
			{AssertionID: "A1", T: 25, Duration: 0.2},
			{AssertionID: "A10", T: 20.3}, // open episode
		}},
		{Label: "clean", Onset: -1},
	}
	var buf bytes.Buffer
	if err := WriteDatasetCSV(&buf, runs, []string{"A10", "A1"}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	if lines[0] != "label,onset,A1_episodes,A1_max_duration,A1_first_latency,A10_episodes,A10_max_duration,A10_first_latency" {
		t.Errorf("header = %q", lines[0])
	}
	// Step row: A1 2 episodes, max dur 0.3, first latency 0.1; A10 open → -1.
	want := "step,20,2,0.3,0.1"
	if !strings.HasPrefix(lines[1], want) {
		t.Errorf("row1 = %q, want prefix %q", lines[1], want)
	}
	if !strings.HasSuffix(lines[1], ",1,-1,0.2999999999999996") && !strings.Contains(lines[1], ",1,-1,0.3") {
		t.Errorf("row1 A10 fields wrong: %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "clean,-1,0,0,-1,0,0,-1") {
		t.Errorf("clean row = %q", lines[2])
	}
	// Validation.
	if err := WriteDatasetCSV(&buf, nil, []string{"A1"}); err == nil {
		t.Error("empty corpus accepted")
	}
	if err := WriteDatasetCSV(&buf, runs, nil); err == nil {
		t.Error("empty universe accepted")
	}
}
