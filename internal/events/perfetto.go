package events

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event export: the JSON-object format documented in the
// Trace Event Format spec and accepted by Perfetto (ui.perfetto.dev) and
// chrome://tracing. The mapping:
//
//   - every Track becomes one thread (tid), named via a thread_name
//     metadata event, so attack windows, per-assertion violation episodes
//     and guard intervals render as parallel swim lanes per scenario and
//     runner jobs as one lane per worker;
//   - events with simulation time go under pid 1 ("sim-time"), ts =
//     T × 1e6 µs; wall-only events (runner job spans) go under pid 2
//     ("wall-clock"), ts relative to the earliest wall stamp. Two
//     processes keep the two clock domains from visually overlapping;
//   - Begin/End map to ph "B"/"E", Instant to ph "i" with thread scope;
//     Attrs pass through as args.

// traceEvent is one entry of the exported traceEvents array.
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// perfettoFile is the top-level object form of the trace-event format.
type perfettoFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// Perfetto process IDs for the two clock domains.
const (
	pidSimTime   = 1
	pidWallClock = 2
)

// WritePerfetto exports an event stream in Chrome trace-event JSON,
// loadable in Perfetto or chrome://tracing.
func WritePerfetto(w io.Writer, evs []Event) error {
	sorted := make([]Event, len(evs))
	copy(sorted, evs)
	SortForTimeline(sorted)

	// Stable track → tid assignment in first-appearance order, per pid.
	tids := map[string]int{}
	pids := map[string]int{}
	var out []traceEvent
	meta := func(pid, tid int, kind, name string) {
		out = append(out, traceEvent{
			Name: kind, Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	meta(pidSimTime, 0, "process_name", "sim-time")
	meta(pidWallClock, 0, "process_name", "wall-clock")

	// Wall-only events are placed relative to the earliest wall stamp.
	var wallBase int64
	for _, e := range sorted {
		if e.T < 0 && e.Wall > 0 && (wallBase == 0 || e.Wall < wallBase) {
			wallBase = e.Wall
		}
	}

	nextTid := 1
	for _, e := range sorted {
		pid := pidSimTime
		ts := e.T * 1e6 // seconds → µs
		if e.T < 0 {
			pid = pidWallClock
			ts = float64(e.Wall-wallBase) / 1e3 // ns → µs
			if e.Wall == 0 {
				ts = 0
			}
		}
		tid, ok := tids[e.Track]
		if !ok {
			tid = nextTid
			nextTid++
			tids[e.Track] = tid
			pids[e.Track] = pid
			meta(pid, tid, "thread_name", e.Track)
		}
		te := traceEvent{Name: e.Name, Cat: string(e.Cat), Ts: ts, Pid: pids[e.Track], Tid: tid}
		switch e.Kind {
		case Begin:
			te.Ph = "B"
		case End:
			te.Ph = "E"
		default:
			te.Ph = "i"
			te.Scope = "t"
		}
		if len(e.Attrs) > 0 {
			args := make(map[string]any, len(e.Attrs))
			for k, v := range e.Attrs {
				args[k] = v
			}
			te.Args = args
		}
		out = append(out, te)
	}

	enc := json.NewEncoder(w)
	if err := enc.Encode(perfettoFile{TraceEvents: out, DisplayTimeUnit: "ms"}); err != nil {
		return fmt.Errorf("events: encode perfetto: %w", err)
	}
	return nil
}
