package events_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"adassure"
	"adassure/internal/events"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden from the current output")

// t4Run executes one cell of the T4 diagnosis-accuracy grid — drift spoof
// on the urban loop under pure pursuit, seed 1, quick duration — with a
// deterministic (wall-clock-free) recorder attached, and returns the
// recorded stream.
func t4Run(t *testing.T) []events.Event {
	t.Helper()
	rec := adassure.NewEventRecorder(0).WithoutWallClock()
	scn := adassure.Scenario{
		Track:      adassure.TrackUrbanLoop,
		Controller: adassure.ControllerPurePursuit,
		Attack:     adassure.AttackDriftSpoof,
		Seed:       1,
		Duration:   55,
		Events:     rec,
	}
	if _, err := scn.Run(); err != nil {
		t.Fatal(err)
	}
	return rec.Events()
}

// TestGoldenTimelineT4 locks the plain-text timeline render of the T4 run
// to a committed snapshot — the event-layer counterpart of the harness
// golden suite. Regenerate after an intentional behaviour change with:
//
//	go test ./internal/events -run TestGoldenTimelineT4 -update
func TestGoldenTimelineT4(t *testing.T) {
	var buf bytes.Buffer
	if err := events.WriteTimeline(&buf, t4Run(t)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden", "timeline_T4.txt")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("timeline drifted from golden %s:\n--- got ---\n%s\n--- want ---\n%s",
			path, buf.String(), want)
	}
}

// TestRunStreamProperties checks the structural invariants of a real
// recorded run: per track, Begin/End episodes are well nested (depth never
// negative, all spans eventually closed) and simulation timestamps are
// monotone in capture order.
func TestRunStreamProperties(t *testing.T) {
	evs := t4Run(t)
	if len(evs) == 0 {
		t.Fatal("run recorded no events")
	}

	depth := map[string]int{}
	lastT := map[string]float64{}
	sawViolation := false
	for i, e := range evs {
		if e.Cat == events.CatViolation {
			sawViolation = true
		}
		switch e.Kind {
		case events.Begin:
			depth[e.Track]++
		case events.End:
			depth[e.Track]--
			if depth[e.Track] < 0 {
				t.Fatalf("event %d: End without Begin on track %q", i, e.Track)
			}
		}
		if e.T != events.NoSimTime {
			if prev, ok := lastT[e.Track]; ok && e.T < prev {
				t.Fatalf("event %d: sim time regressed on track %q: %.3f after %.3f", i, e.Track, e.T, prev)
			}
			lastT[e.Track] = e.T
		}
	}
	for track, d := range depth {
		if d != 0 {
			t.Errorf("track %q: %d unclosed spans at end of run", track, d)
		}
	}
	if !sawViolation {
		t.Error("attacked T4 run recorded no violation episodes")
	}

	// Whole-stream sequence monotonicity (capture order preserved).
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("seq not strictly increasing at %d", i)
		}
	}
}

// TestFlightRecorderOnRealRun re-runs T4 through a small ring and checks
// the flight-recorder contract against the unbounded stream: the ring
// holds exactly the newest events.
func TestFlightRecorderOnRealRun(t *testing.T) {
	full := t4Run(t)
	const capacity = 8
	ring := adassure.NewEventRecorder(capacity).WithoutWallClock()
	scn := adassure.Scenario{
		Track:      adassure.TrackUrbanLoop,
		Controller: adassure.ControllerPurePursuit,
		Attack:     adassure.AttackDriftSpoof,
		Seed:       1,
		Duration:   55,
		Events:     ring,
	}
	if _, err := scn.Run(); err != nil {
		t.Fatal(err)
	}
	got := ring.Events()
	if len(got) != capacity {
		t.Fatalf("ring retained %d events, want %d", len(got), capacity)
	}
	want := full[len(full)-capacity:]
	for i := range got {
		if got[i].Seq != want[i].Seq || got[i].Name != want[i].Name || got[i].T != want[i].T {
			t.Fatalf("ring[%d] = %+v, want newest-window event %+v", i, got[i], want[i])
		}
	}
	if int(ring.Dropped()) != len(full)-capacity {
		t.Errorf("Dropped() = %d, want %d", ring.Dropped(), len(full)-capacity)
	}
}
