// Package events is the structured event timeline of the repo — the
// "flight recorder" that answers the question the aggregate metrics layer
// (internal/obs) cannot: *what exactly happened around a violation?* It
// records typed spans and instants — scenario lifecycle, attack windows,
// per-assertion violation episodes, guard fallback intervals, diagnosis
// hypotheses and runner job spans — correlated on simulation time plus
// wall time, so an engineer can line up "the drift spoof switched on at
// t=20 s" with "A13 opened an episode at t=28.4 s" without rerunning the
// simulation.
//
// Design constraints, mirroring internal/obs:
//
//  1. A nil recorder costs nothing. Every method on a nil *Recorder is a
//     single-branch no-op that never reads the clock and never allocates
//     (pinned by BenchmarkNilRecorder / TestNilRecorderZeroAlloc), so the
//     instrumented layers need no "is recording on?" flag of their own.
//  2. Long runs stay O(1) memory. A Recorder built with a positive
//     capacity is a ring buffer: it keeps the newest events, counts what
//     it dropped, and never exceeds its capacity — flight-recorder
//     semantics for fleet-scale batch runs.
//  3. No dependencies beyond the standard library, so every layer of the
//     repo — including internal/core — can emit events without cycles.
//
// Event streams serialise to JSON (WriteJSON/ReadJSON), render as a
// plain-text timeline (WriteTimeline) and export to the Chrome
// trace-event format loadable in Perfetto or chrome://tracing
// (WritePerfetto).
package events

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"
)

// Kind distinguishes instantaneous events from span boundaries.
type Kind uint8

// Event kinds.
const (
	// Instant is a point event (a diagnosis hypothesis, a termination).
	Instant Kind = iota
	// Begin opens a span on its track.
	Begin
	// End closes the most recent open span on its track.
	End
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Instant:
		return "instant"
	case Begin:
		return "begin"
	case End:
		return "end"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// MarshalJSON serialises the kind as its readable name.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON parses the readable name back.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	switch s {
	case "instant":
		*k = Instant
	case "begin":
		*k = Begin
	case "end":
		*k = End
	default:
		return fmt.Errorf("events: unknown kind %q", s)
	}
	return nil
}

// Category labels the subsystem an event came from.
type Category string

// Event categories, one per instrumented layer.
const (
	CatScenario  Category = "scenario"  // run lifecycle (internal/sim)
	CatAttack    Category = "attack"    // attack activation windows (internal/attacks via sim)
	CatViolation Category = "violation" // assertion episodes (internal/core)
	CatGuard     Category = "guard"     // dead-reckoning fallback intervals (internal/sim)
	CatDiagnosis Category = "diagnosis" // ranked hypotheses (internal/diagnosis)
	CatRunner    Category = "runner"    // worker-pool job spans (internal/runner)
	CatTrace     Category = "trace"     // request-tracing spans (internal/telemetry)
)

// NoSimTime is the T value of events that exist only on the wall clock
// (runner job spans): simulation timestamps are non-negative by
// construction, so a negative T marks "no sim time".
const NoSimTime = -1

// Event is one recorded timeline entry. Events are correlated on two
// clocks: T is deterministic simulation time (seconds; NoSimTime when the
// event has none) and Wall is the wall-clock capture instant in Unix
// nanoseconds (0 when the recorder was built without wall stamps).
type Event struct {
	// Seq is the recorder-assigned monotone sequence number; it survives
	// ring-buffer eviction, so gaps reveal dropped history.
	Seq uint64 `json:"seq"`
	// T is the simulation time in seconds, or NoSimTime.
	T float64 `json:"t"`
	// Wall is the wall-clock capture time, Unix nanoseconds (0 = unknown).
	Wall int64 `json:"wall_ns,omitempty"`
	// Kind is instant, begin or end.
	Kind Kind `json:"kind"`
	// Cat is the source subsystem.
	Cat Category `json:"cat"`
	// Track groups events into one horizontal line of the timeline, e.g.
	// "assertion/A13" or "runner/worker-2". Begin/End pairs match per
	// track. A scope prefix (e.g. "s3/") keeps tracks distinct when many
	// scenarios share one recorder.
	Track string `json:"track"`
	// Name labels the span or instant, e.g. "A13 heading-consistency".
	Name string `json:"name"`
	// Attrs carries numeric evidence (thresholds, confidences, margins).
	Attrs map[string]float64 `json:"attrs,omitempty"`
}

// Recorder accumulates events. All methods are nil-safe no-ops on a nil
// *Recorder, and safe for concurrent use otherwise — the runner's workers
// and their scenarios share one recorder in batch mode.
type Recorder struct {
	mu      sync.Mutex
	buf     []Event // ring storage when capacity > 0, else append-only
	cap     int     // ring capacity; <= 0 means unbounded
	head    int     // ring write cursor
	size    int     // occupied ring slots
	seq     uint64  // next sequence number
	dropped uint64  // events evicted by the ring
	noWall  bool    // suppress wall stamps (deterministic tests)
}

// NewRecorder builds a recorder. capacity > 0 bounds it to the newest
// `capacity` events (flight-recorder mode, O(1) memory on long runs);
// capacity <= 0 keeps everything.
func NewRecorder(capacity int) *Recorder {
	r := &Recorder{cap: capacity}
	if capacity > 0 {
		r.buf = make([]Event, capacity)
	}
	return r
}

// WithoutWallClock disables wall-clock stamping, making the recorded
// stream fully deterministic (used by golden tests). Returns the recorder
// for chaining.
func (r *Recorder) WithoutWallClock() *Recorder {
	if r != nil {
		r.noWall = true
	}
	return r
}

// Enabled reports whether the recorder captures anything — the idiom for
// guarding attrs-map construction at instrumented call sites.
func (r *Recorder) Enabled() bool { return r != nil }

// Emit records one event, stamping Seq and Wall. The zero-cost contract:
// on a nil recorder this is a single branch, no clock read, no
// allocation.
func (r *Recorder) Emit(e Event) {
	if r == nil {
		return
	}
	if !r.noWall {
		e.Wall = time.Now().UnixNano()
	}
	if !finite(e.T) {
		e.T = NoSimTime
	}
	r.mu.Lock()
	e.Seq = r.seq
	r.seq++
	if r.cap > 0 {
		if r.size == r.cap {
			r.dropped++
		} else {
			r.size++
		}
		r.buf[r.head] = e
		r.head = (r.head + 1) % r.cap
	} else {
		r.buf = append(r.buf, e)
	}
	r.mu.Unlock()
}

// Instant records a point event.
func (r *Recorder) Instant(cat Category, track, name string, t float64, attrs map[string]float64) {
	if r == nil {
		return
	}
	r.Emit(Event{Kind: Instant, Cat: cat, Track: track, Name: name, T: t, Attrs: attrs})
}

// Begin opens a span on the track.
func (r *Recorder) Begin(cat Category, track, name string, t float64, attrs map[string]float64) {
	if r == nil {
		return
	}
	r.Emit(Event{Kind: Begin, Cat: cat, Track: track, Name: name, T: t, Attrs: attrs})
}

// End closes the most recent open span on the track.
func (r *Recorder) End(cat Category, track, name string, t float64, attrs map[string]float64) {
	if r == nil {
		return
	}
	r.Emit(Event{Kind: End, Cat: cat, Track: track, Name: name, T: t, Attrs: attrs})
}

// Events returns the retained events in sequence order (oldest first).
// The slice is a copy; the caller owns it.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cap <= 0 {
		out := make([]Event, len(r.buf))
		copy(out, r.buf)
		return out
	}
	out := make([]Event, 0, r.size)
	start := r.head - r.size
	if start < 0 {
		start += r.cap
	}
	for i := 0; i < r.size; i++ {
		out = append(out, r.buf[(start+i)%r.cap])
	}
	return out
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cap <= 0 {
		return len(r.buf)
	}
	return r.size
}

// Capacity returns the ring capacity (0 = unbounded).
func (r *Recorder) Capacity() int {
	if r == nil {
		return 0
	}
	if r.cap <= 0 {
		return 0
	}
	return r.cap
}

// Dropped returns how many events the ring evicted.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Log is the serialised form of a recorded stream.
type Log struct {
	// Schema identifies the format for forward compatibility.
	Schema string `json:"schema"`
	// Capacity echoes the recorder's ring capacity (0 = unbounded).
	Capacity int `json:"capacity,omitempty"`
	// Dropped counts events evicted before the dump.
	Dropped uint64 `json:"dropped,omitempty"`
	// Events holds the retained events, oldest first.
	Events []Event `json:"events"`
}

// LogSchema is the current events-file schema identifier.
const LogSchema = "adassure/events/v1"

// Snapshot captures the recorder as a serialisable Log.
func (r *Recorder) Snapshot() Log {
	return Log{Schema: LogSchema, Capacity: r.Capacity(), Dropped: r.Dropped(), Events: r.Events()}
}

// WriteJSON serialises the recorded stream as indented JSON.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.Snapshot()); err != nil {
		return fmt.Errorf("events: encode log: %w", err)
	}
	return nil
}

// ReadJSON parses a stream previously written by WriteJSON. Events are
// returned in stored order; sequence numbers must be strictly increasing
// so a corrupted or hand-spliced file fails loudly.
func ReadJSON(rd io.Reader) (Log, error) {
	var lg Log
	if err := json.NewDecoder(rd).Decode(&lg); err != nil {
		return Log{}, fmt.Errorf("events: decode log: %w", err)
	}
	if lg.Schema != LogSchema {
		return Log{}, fmt.Errorf("events: unsupported schema %q (want %q)", lg.Schema, LogSchema)
	}
	for i := 1; i < len(lg.Events); i++ {
		if lg.Events[i].Seq <= lg.Events[i-1].Seq {
			return Log{}, fmt.Errorf("events: sequence not increasing at index %d (%d after %d)",
				i, lg.Events[i].Seq, lg.Events[i-1].Seq)
		}
	}
	return lg, nil
}

// SortForTimeline orders events for rendering: by sim time, events
// without one last, ties broken by sequence. The sort is stable with
// respect to capture order on equal timestamps.
func SortForTimeline(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		aw, bw := a.T < 0, b.T < 0
		if aw != bw {
			return bw // events with sim time come first
		}
		if aw { // both wall-only: order by sequence
			return a.Seq < b.Seq
		}
		if a.T != b.T {
			return a.T < b.T
		}
		return a.Seq < b.Seq
	})
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
