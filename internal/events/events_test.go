package events_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"adassure/internal/events"
)

// --- ring buffer properties ---------------------------------------------

// TestRingNeverExceedsCapacity drives rings of assorted capacities with
// random emit counts and checks the flight-recorder contract after every
// single emit: the retained count never exceeds the capacity, sequence
// numbers stay strictly increasing, and the ring always holds exactly the
// newest events (the dropped count accounting for the rest).
func TestRingNeverExceedsCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, capacity := range []int{1, 2, 3, 7, 64} {
		total := capacity + rng.Intn(4*capacity+10)
		r := events.NewRecorder(capacity).WithoutWallClock()
		for i := 0; i < total; i++ {
			r.Instant(events.CatScenario, "tr", fmt.Sprintf("e%d", i), float64(i), nil)

			if got := r.Len(); got > capacity {
				t.Fatalf("cap %d: Len() = %d after %d emits", capacity, got, i+1)
			}
			evs := r.Events()
			if len(evs) != r.Len() {
				t.Fatalf("cap %d: Events() len %d != Len() %d", capacity, len(evs), r.Len())
			}
			for j := 1; j < len(evs); j++ {
				if evs[j].Seq <= evs[j-1].Seq {
					t.Fatalf("cap %d: seq not increasing: %d after %d", capacity, evs[j].Seq, evs[j-1].Seq)
				}
			}
			// Newest-events invariant: the retained window is exactly the
			// suffix of the emitted stream.
			wantOldest := uint64(0)
			if i+1 > capacity {
				wantOldest = uint64(i + 1 - capacity)
			}
			if len(evs) > 0 && evs[0].Seq != wantOldest {
				t.Fatalf("cap %d: oldest retained seq = %d, want %d", capacity, evs[0].Seq, wantOldest)
			}
			if len(evs) > 0 && evs[len(evs)-1].Seq != uint64(i) {
				t.Fatalf("cap %d: newest retained seq = %d, want %d", capacity, evs[len(evs)-1].Seq, i)
			}
		}
		wantDropped := uint64(0)
		if total > capacity {
			wantDropped = uint64(total - capacity)
		}
		if r.Dropped() != wantDropped {
			t.Errorf("cap %d: Dropped() = %d, want %d", capacity, r.Dropped(), wantDropped)
		}
		if r.Capacity() != capacity {
			t.Errorf("cap %d: Capacity() = %d", capacity, r.Capacity())
		}
	}
}

func TestUnboundedRecorderKeepsEverything(t *testing.T) {
	r := events.NewRecorder(0).WithoutWallClock()
	const n = 500
	for i := 0; i < n; i++ {
		r.Begin(events.CatAttack, "a", "x", float64(i), nil)
	}
	if r.Len() != n || r.Dropped() != 0 || r.Capacity() != 0 {
		t.Fatalf("unbounded recorder: len %d dropped %d cap %d", r.Len(), r.Dropped(), r.Capacity())
	}
}

// TestNonFiniteSimTime checks NaN/Inf timestamps collapse to NoSimTime
// instead of corrupting the stream.
func TestNonFiniteSimTime(t *testing.T) {
	r := events.NewRecorder(0).WithoutWallClock()
	r.Emit(events.Event{Kind: events.Instant, Track: "t", Name: "nan", T: math.NaN()})
	r.Emit(events.Event{Kind: events.Instant, Track: "t", Name: "inf", T: math.Inf(1)})
	for _, e := range r.Events() {
		if e.T != events.NoSimTime {
			t.Errorf("event %q: T = %v, want NoSimTime", e.Name, e.T)
		}
	}
}

// --- nil recorder zero-cost contract ------------------------------------

func TestNilRecorderZeroAlloc(t *testing.T) {
	var r *events.Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports Enabled")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		r.Instant(events.CatScenario, "t", "n", 1, nil)
		r.Begin(events.CatAttack, "t", "n", 2, nil)
		r.End(events.CatAttack, "t", "n", 3, nil)
		r.Emit(events.Event{})
		_ = r.Events()
		_ = r.Len()
		_ = r.Dropped()
	})
	if allocs != 0 {
		t.Fatalf("nil recorder allocated %v allocs/op, want 0", allocs)
	}
}

// BenchmarkNilRecorder pins the detached-events overhead, mirroring
// BenchmarkNilRegistry in internal/obs: a nil recorder must be a branch,
// not a cost.
func BenchmarkNilRecorder(b *testing.B) {
	var r *events.Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Begin(events.CatViolation, "assertion/A1", "A1", 1.5, nil)
		r.End(events.CatViolation, "assertion/A1", "A1", 2.5, nil)
	}
}

// BenchmarkRingEmit measures the attached flight-recorder hot path.
func BenchmarkRingEmit(b *testing.B) {
	r := events.NewRecorder(1024).WithoutWallClock()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Instant(events.CatScenario, "t", "n", float64(i), nil)
	}
}

// --- serialisation ------------------------------------------------------

func TestLogJSONRoundTrip(t *testing.T) {
	r := events.NewRecorder(4).WithoutWallClock()
	for i := 0; i < 7; i++ {
		r.Begin(events.CatViolation, "assertion/A1", "A1 ep", float64(i),
			map[string]float64{"severity": 2, "first_breach": float64(i) - 0.5})
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lg, err := events.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := r.Snapshot()
	if !reflect.DeepEqual(lg, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", lg, want)
	}
	if lg.Dropped != 3 || lg.Capacity != 4 || len(lg.Events) != 4 {
		t.Fatalf("log header wrong: %+v", lg)
	}
}

func TestReadJSONRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"bad schema":  `{"schema":"other/v9","events":[]}`,
		"seq regress": `{"schema":"adassure/events/v1","events":[{"seq":2,"t":1,"kind":"begin","cat":"attack","track":"a","name":"x"},{"seq":1,"t":2,"kind":"end","cat":"attack","track":"a","name":"x"}]}`,
		"not json":    `hello`,
		"bad kind":    `{"schema":"adassure/events/v1","events":[{"seq":0,"t":1,"kind":"zigzag","cat":"attack","track":"a","name":"x"}]}`,
	}
	for name, in := range cases {
		if _, err := events.ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadJSON accepted invalid input", name)
		}
	}
}

// --- timeline ordering --------------------------------------------------

func TestSortForTimeline(t *testing.T) {
	evs := []events.Event{
		{Seq: 0, T: events.NoSimTime, Name: "wall-a"},
		{Seq: 1, T: 5, Name: "sim-late"},
		{Seq: 2, T: 1, Name: "sim-early"},
		{Seq: 3, T: 1, Name: "sim-early-2"},
		{Seq: 4, T: events.NoSimTime, Name: "wall-b"},
	}
	events.SortForTimeline(evs)
	gotNames := make([]string, len(evs))
	for i, e := range evs {
		gotNames[i] = e.Name
	}
	want := []string{"sim-early", "sim-early-2", "sim-late", "wall-a", "wall-b"}
	if !reflect.DeepEqual(gotNames, want) {
		t.Fatalf("order = %v, want %v", gotNames, want)
	}
}

// --- perfetto export ----------------------------------------------------

// TestPerfettoSchema validates the export against the Chrome trace-event
// schema: every entry carries ph/ts/pid/tid, phases are from the known
// set, B/E are balanced per (pid, tid), and both clock-domain processes
// are named.
func TestPerfettoSchema(t *testing.T) {
	r := events.NewRecorder(0).WithoutWallClock()
	r.Begin(events.CatScenario, "s0/scenario", "run", 0, map[string]float64{"seed": 1})
	r.Begin(events.CatAttack, "s0/attack", "drift", 20, nil)
	r.Begin(events.CatViolation, "s0/assertion/A13", "A13", 26.5, nil)
	r.End(events.CatViolation, "s0/assertion/A13", "A13", 42.1, nil)
	r.End(events.CatAttack, "s0/attack", "drift", 50, nil)
	r.Instant(events.CatDiagnosis, "s0/diagnosis", "gnss-drift-spoof", 55, map[string]float64{"confidence": 0.25})
	r.End(events.CatScenario, "s0/scenario", "run", 55, nil)
	r.Begin(events.CatRunner, "runner/worker-0", "job 0", events.NoSimTime, nil)
	r.End(events.CatRunner, "runner/worker-0", "job 0", events.NoSimTime, nil)

	var buf bytes.Buffer
	if err := events.WritePerfetto(&buf, r.Events()); err != nil {
		t.Fatal(err)
	}

	var file struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("perfetto output is not valid JSON: %v", err)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("no traceEvents emitted")
	}

	depth := map[string]int{}
	processNames := map[string]bool{}
	for i, te := range file.TraceEvents {
		for _, field := range []string{"ph", "ts", "pid", "tid", "name"} {
			if _, ok := te[field]; !ok {
				t.Fatalf("traceEvents[%d] missing required field %q: %v", i, field, te)
			}
		}
		var ph string
		if err := json.Unmarshal(te["ph"], &ph); err != nil {
			t.Fatal(err)
		}
		var pid, tid int
		if err := json.Unmarshal(te["pid"], &pid); err != nil {
			t.Fatalf("traceEvents[%d]: pid not a number: %v", i, err)
		}
		if err := json.Unmarshal(te["tid"], &tid); err != nil {
			t.Fatalf("traceEvents[%d]: tid not a number: %v", i, err)
		}
		var ts float64
		if err := json.Unmarshal(te["ts"], &ts); err != nil {
			t.Fatalf("traceEvents[%d]: ts not a number: %v", i, err)
		}
		key := fmt.Sprintf("%d/%d", pid, tid)
		switch ph {
		case "B":
			depth[key]++
		case "E":
			depth[key]--
			if depth[key] < 0 {
				t.Fatalf("traceEvents[%d]: E without matching B on %s", i, key)
			}
		case "i", "M":
		default:
			t.Fatalf("traceEvents[%d]: unknown phase %q", i, ph)
		}
		if ph == "M" {
			var args struct {
				Name string `json:"name"`
			}
			if err := json.Unmarshal(te["args"], &args); err == nil {
				processNames[args.Name] = true
			}
		}
	}
	for key, d := range depth {
		if d != 0 {
			t.Errorf("track %s: %d unclosed B spans", key, d)
		}
	}
	for _, want := range []string{"sim-time", "wall-clock"} {
		if !processNames[want] {
			t.Errorf("missing %q process/thread metadata", want)
		}
	}
}
