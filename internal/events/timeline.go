package events

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteTimeline renders an event stream as a plain-text timeline for the
// harness and the adassure-trace CLI: one line per event, sim-time
// ordered, with kind markers (▶ begin, ■ end, ● instant) and the numeric
// attributes inline. Wall-clock stamps are deliberately omitted so the
// render of a deterministic run is itself deterministic (golden-testable).
func WriteTimeline(w io.Writer, evs []Event) error {
	sorted := make([]Event, len(evs))
	copy(sorted, evs)
	SortForTimeline(sorted)

	trackW, nameW := len("track"), 0
	for _, e := range sorted {
		if len(e.Track) > trackW {
			trackW = len(e.Track)
		}
		if len(e.Name) > nameW {
			nameW = len(e.Name)
		}
	}
	if _, err := fmt.Fprintf(w, "event timeline (%d events)\n", len(sorted)); err != nil {
		return err
	}
	for _, e := range sorted {
		marker := "●"
		switch e.Kind {
		case Begin:
			marker = "▶"
		case End:
			marker = "■"
		}
		ts := "   wall    "
		if e.T >= 0 {
			ts = fmt.Sprintf("t=%8.2fs", e.T)
		}
		line := fmt.Sprintf("  %s  %s %-7s [%-9s] %-*s  %-*s",
			ts, marker, e.Kind, e.Cat, trackW, e.Track, nameW, e.Name)
		if attrs := formatAttrs(e.Attrs); attrs != "" {
			line += "  " + attrs
		}
		if _, err := fmt.Fprintln(w, strings.TrimRight(line, " ")); err != nil {
			return err
		}
	}
	return nil
}

// formatAttrs renders the attribute map deterministically (sorted keys).
func formatAttrs(attrs map[string]float64) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%.4g", k, attrs[k])
	}
	return strings.Join(parts, " ")
}
