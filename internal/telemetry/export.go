package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Schema is the exported-trace schema identifier.
const Schema = "adassure/spans/v1"

// LinkExport is the wire form of a cross-trace link.
type LinkExport struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
}

// SpanExport is the wire form of one finished span.
type SpanExport struct {
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id,omitempty"`
	Name     string `json:"name"`
	// StartUnixNS / EndUnixNS are wall-clock Unix nanoseconds.
	StartUnixNS int64             `json:"start_unix_ns"`
	EndUnixNS   int64             `json:"end_unix_ns"`
	DurationNS  int64             `json:"duration_ns"`
	Attrs       map[string]string `json:"attrs,omitempty"`
	Links       []LinkExport      `json:"links,omitempty"`
}

// TraceExport is one self-contained trace document — the body of
// GET /debug/traces/<id> and the input of the Perfetto converter.
type TraceExport struct {
	Schema  string       `json:"schema"`
	TraceID string       `json:"trace_id"`
	Spans   []SpanExport `json:"spans"`
	// Dropped counts spans lost to the per-trace cap.
	Dropped int `json:"dropped,omitempty"`
}

// Export returns the retained trace as a serialisable document, spans in
// start-time order. ok is false when the trace is unknown or evicted.
func (t *Tracer) Export(id TraceID) (TraceExport, bool) {
	if t == nil {
		return TraceExport{}, false
	}
	t.mu.Lock()
	rec, ok := t.traces[id]
	if !ok {
		t.mu.Unlock()
		return TraceExport{}, false
	}
	spans := make([]SpanData, len(rec.spans))
	copy(spans, rec.spans)
	dropped := rec.dropped
	t.mu.Unlock()

	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	exp := TraceExport{Schema: Schema, TraceID: id.String(), Dropped: dropped,
		Spans: make([]SpanExport, 0, len(spans))}
	for _, sd := range spans {
		se := SpanExport{
			SpanID:      sd.SpanID.String(),
			ParentID:    sd.Parent.String(),
			Name:        sd.Name,
			StartUnixNS: sd.Start,
			EndUnixNS:   sd.End,
			DurationNS:  sd.End - sd.Start,
			Attrs:       sd.Attrs,
		}
		for _, l := range sd.Links {
			se.Links = append(se.Links, LinkExport{TraceID: l.TraceID.String(), SpanID: l.SpanID.String()})
		}
		exp.Spans = append(exp.Spans, se)
	}
	return exp, true
}

// WriteJSON serialises the trace as indented JSON.
func (e TraceExport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(e); err != nil {
		return fmt.Errorf("telemetry: encode trace: %w", err)
	}
	return nil
}

// ReadTrace parses a trace previously produced by Export/WriteJSON (e.g.
// fetched from /debug/traces/<id>).
func ReadTrace(r io.Reader) (TraceExport, error) {
	var e TraceExport
	if err := json.NewDecoder(r).Decode(&e); err != nil {
		return TraceExport{}, fmt.Errorf("telemetry: decode trace: %w", err)
	}
	if e.Schema != Schema {
		return TraceExport{}, fmt.Errorf("telemetry: unsupported schema %q (want %q)", e.Schema, Schema)
	}
	return e, nil
}

// perfettoEvent mirrors internal/events' Chrome trace-event shape; it is
// re-declared here so telemetry stays importable without events' exporter.
type perfettoEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type perfettoFile struct {
	TraceEvents     []perfettoEvent `json:"traceEvents"`
	DisplayTimeUnit string          `json:"displayTimeUnit"`
}

// WritePerfetto exports a trace in Chrome trace-event JSON ("X" complete
// events, µs relative to the trace's earliest span), loadable in Perfetto
// or chrome://tracing. All spans share one thread; Perfetto nests them by
// containment, which matches the serving tier's stack-shaped spans.
func WritePerfetto(w io.Writer, tr TraceExport) error {
	var base int64
	for i, sp := range tr.Spans {
		if i == 0 || sp.StartUnixNS < base {
			base = sp.StartUnixNS
		}
	}
	out := []perfettoEvent{{
		Name: "process_name", Ph: "M", Pid: 1, Tid: 0,
		Args: map[string]any{"name": "trace " + tr.TraceID},
	}}
	for _, sp := range tr.Spans {
		ev := perfettoEvent{
			Name: sp.Name,
			Cat:  "span",
			Ph:   "X",
			Ts:   float64(sp.StartUnixNS-base) / 1e3,
			Dur:  float64(sp.DurationNS) / 1e3,
			Pid:  1,
			Tid:  1,
		}
		if len(sp.Attrs) > 0 || len(sp.Links) > 0 {
			args := make(map[string]any, len(sp.Attrs)+1)
			for k, v := range sp.Attrs {
				args[k] = v
			}
			for i, l := range sp.Links {
				args[fmt.Sprintf("link.%d", i)] = l.TraceID + "/" + l.SpanID
			}
			ev.Args = args
		}
		out = append(out, ev)
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(perfettoFile{TraceEvents: out, DisplayTimeUnit: "ms"}); err != nil {
		return fmt.Errorf("telemetry: encode perfetto: %w", err)
	}
	return nil
}

// Render writes the human-readable account of a trace (the
// `adassure-trace spans` view): one line per span, indented by parent
// depth, with duration and attributes.
func (e TraceExport) Render(w io.Writer) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace %s (%d spans", e.TraceID, len(e.Spans))
	if e.Dropped > 0 {
		fmt.Fprintf(&sb, ", %d dropped", e.Dropped)
	}
	sb.WriteString(")\n")

	depth := make(map[string]int, len(e.Spans))
	byID := make(map[string]SpanExport, len(e.Spans))
	for _, sp := range e.Spans {
		byID[sp.SpanID] = sp
	}
	var depthOf func(id string) int
	depthOf = func(id string) int {
		if d, ok := depth[id]; ok {
			return d
		}
		depth[id] = 0 // pre-seed: breaks parent cycles in corrupt files
		sp, ok := byID[id]
		if !ok || sp.ParentID == "" {
			return 0
		}
		if _, ok := byID[sp.ParentID]; !ok {
			return 0 // remote parent (propagated traceparent)
		}
		d := 1 + depthOf(sp.ParentID)
		depth[id] = d
		return d
	}

	var base int64
	for i, sp := range e.Spans {
		if i == 0 || sp.StartUnixNS < base {
			base = sp.StartUnixNS
		}
	}
	for _, sp := range e.Spans {
		indent := strings.Repeat("  ", depthOf(sp.SpanID))
		fmt.Fprintf(&sb, "  %s%-*s  +%8.3f ms  %10.3f ms  [%s]",
			indent, 28-2*depthOf(sp.SpanID), sp.Name,
			float64(sp.StartUnixNS-base)/1e6, float64(sp.DurationNS)/1e6, sp.SpanID)
		if len(sp.Attrs) > 0 {
			keys := make([]string, 0, len(sp.Attrs))
			for k := range sp.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&sb, " %s=%s", k, sp.Attrs[k])
			}
		}
		for _, l := range sp.Links {
			fmt.Fprintf(&sb, " link=%s/%s", l.TraceID, l.SpanID)
		}
		sb.WriteString("\n")
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
