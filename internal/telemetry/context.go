package telemetry

import "context"

// ctxKey is the private context key for the active span.
type ctxKey struct{}

// ContextWithSpan returns a context carrying sp. A nil span returns ctx
// unchanged, so the detached path allocates nothing.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// SpanFrom returns the span carried by ctx, or nil. All span methods are
// nil-safe, so callers chain without checking.
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}
