package telemetry

import (
	"context"
	"testing"
)

// TestNilTracerZeroAlloc pins the detached-telemetry contract from the
// package doc: with no tracer configured, every call instrumented code can
// make — span creation, attributes, links, context plumbing, ID/header
// accessors — allocates nothing and never reads the clock.
func TestNilTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.StartSpan("http /v1/run", "")
		c := sp.StartChild("cache.lookup")
		c.SetAttr("disposition", "miss")
		c.SetInt("bytes", 123)
		c.SetFloat("scale", 1.5)
		c.AddLink(TraceID{1}, SpanID{1})
		c.End()
		sctx := ContextWithSpan(ctx, sp)
		_ = SpanFrom(sctx)
		_ = sp.TraceID()
		_ = sp.SpanID()
		_ = sp.TraceParent()
		_ = sp.Enabled()
		sp.End()
		_ = tr.Enabled()
		_ = tr.Len()
		_, _ = tr.Export(TraceID{1})
	})
	if allocs != 0 {
		t.Fatalf("detached telemetry allocates %.1f per op, want 0", allocs)
	}
}

// BenchmarkNilSpanChain is the evidence file for the zero-cost claim: the
// full detached instrumentation chain should be a handful of nanoseconds.
func BenchmarkNilSpanChain(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartSpan("http /v1/run", "")
		c := sp.StartChild("execute")
		c.SetAttr("k", "v")
		c.End()
		sp.End()
	}
}

// BenchmarkSpanChain measures the attached cost of a realistic request
// span tree (root + 3 children with attributes), for the overhead budget
// in DESIGN.md §15.
func BenchmarkSpanChain(b *testing.B) {
	tr := New(Config{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartSpan("http /v1/run", "")
		for _, name := range [...]string{"cache.lookup", "queue.wait", "execute"} {
			c := sp.StartChild(name)
			c.SetAttr("k", "v")
			c.End()
		}
		sp.End()
	}
}
