package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"adassure/internal/events"
)

func TestTraceParentRoundTrip(t *testing.T) {
	tr := New(Config{})
	sp := tr.StartSpan("root", "")
	h := sp.TraceParent()
	tid, sid, flags, err := ParseTraceParent(h)
	if err != nil {
		t.Fatalf("ParseTraceParent(%q): %v", h, err)
	}
	if tid != sp.TraceID() || sid != sp.SpanID() {
		t.Fatalf("round trip mismatch: %s/%s vs %s/%s", tid, sid, sp.TraceID(), sp.SpanID())
	}
	if flags != FlagSampled {
		t.Fatalf("flags = %02x, want %02x", flags, FlagSampled)
	}
}

func TestParseTraceParentRejects(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if _, _, _, err := ParseTraceParent(valid); err != nil {
		t.Fatalf("valid header rejected: %v", err)
	}
	bad := []string{
		"",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",     // short
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",  // zero trace
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",  // zero span
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // version ff
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0z",  // bad hex
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // bad sep
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-011", // version-00 too long
	}
	for _, h := range bad {
		if _, _, _, err := ParseTraceParent(h); err == nil {
			t.Errorf("ParseTraceParent(%q) accepted, want error", h)
		}
	}
	// Forward compatibility: a future version with a trailing field parses.
	future := "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"
	if _, _, _, err := ParseTraceParent(future); err != nil {
		t.Errorf("future-version traceparent rejected: %v", err)
	}
}

func TestRemoteParentPinsTrace(t *testing.T) {
	tr := New(Config{})
	remote := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	sp := tr.StartSpan("root", remote)
	if got := sp.TraceID().String(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace id = %s, want the propagated one", got)
	}
	sp.End()
	exp, ok := tr.Export(sp.TraceID())
	if !ok {
		t.Fatal("trace not retained")
	}
	if exp.Spans[0].ParentID != "00f067aa0ba902b7" {
		t.Fatalf("root parent = %q, want the remote parent id", exp.Spans[0].ParentID)
	}
}

func TestSpanTreeExport(t *testing.T) {
	tr := New(Config{})
	root := tr.StartSpan("http /v1/run", "")
	root.SetAttr("route", "/v1/run")
	cache := root.StartChild("cache.lookup")
	cache.SetAttr("disposition", "miss")
	cache.End()
	q := root.StartChild("queue.wait")
	q.End()
	ex := root.StartChild("execute")
	sim := ex.StartChild("phase.sim+monitor")
	sim.SetInt("steps", 1200)
	sim.End()
	ex.End()
	root.SetAttr("status", "200")
	root.End()

	exp, ok := tr.Export(root.TraceID())
	if !ok {
		t.Fatal("trace not retained")
	}
	if len(exp.Spans) != 5 {
		t.Fatalf("%d spans, want 5", len(exp.Spans))
	}
	byName := map[string]SpanExport{}
	for _, sp := range exp.Spans {
		byName[sp.Name] = sp
		if sp.EndUnixNS < sp.StartUnixNS {
			t.Fatalf("span %s ends before it starts", sp.Name)
		}
	}
	if byName["cache.lookup"].ParentID != byName["http /v1/run"].SpanID {
		t.Fatal("cache.lookup not parented under the handler span")
	}
	if byName["phase.sim+monitor"].ParentID != byName["execute"].SpanID {
		t.Fatal("sim phase not parented under execute")
	}
	if byName["http /v1/run"].Attrs["status"] != "200" {
		t.Fatalf("root attrs = %v", byName["http /v1/run"].Attrs)
	}

	// JSON round trip.
	var buf bytes.Buffer
	if err := exp.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.TraceID != exp.TraceID || len(back.Spans) != len(exp.Spans) {
		t.Fatalf("round trip lost spans: %+v", back)
	}

	// Render and Perfetto are smoke-checked for shape.
	var txt bytes.Buffer
	if err := exp.Render(&txt); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"http /v1/run", "cache.lookup", "phase.sim+monitor"} {
		if !strings.Contains(txt.String(), want) {
			t.Fatalf("render missing %q:\n%s", want, txt.String())
		}
	}
	var pf bytes.Buffer
	if err := WritePerfetto(&pf, exp); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(pf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 6 { // 5 spans + process_name metadata
		t.Fatalf("%d perfetto events, want 6", len(doc.TraceEvents))
	}
}

func TestLinksExport(t *testing.T) {
	tr := New(Config{})
	leader := tr.StartSpan("leader", "")
	waiter := tr.StartSpan("waiter", "")
	w := waiter.StartChild("coalesced.wait")
	w.AddLink(leader.TraceID(), leader.SpanID())
	w.End()
	waiter.End()
	leader.End()

	exp, _ := tr.Export(waiter.TraceID())
	var found bool
	for _, sp := range exp.Spans {
		for _, l := range sp.Links {
			if l.TraceID == leader.TraceID().String() && l.SpanID == leader.SpanID().String() {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("link to leader trace not exported")
	}
}

func TestStoreEviction(t *testing.T) {
	tr := New(Config{MaxTraces: 4, MaxSpansPerTrace: 2})
	var roots []*Span
	for i := 0; i < 10; i++ {
		sp := tr.StartSpan(fmt.Sprintf("r%d", i), "")
		sp.End()
		roots = append(roots, sp)
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("retained %d traces, want 4", got)
	}
	if _, ok := tr.Export(roots[0].TraceID()); ok {
		t.Fatal("oldest trace should have been evicted")
	}
	if _, ok := tr.Export(roots[9].TraceID()); !ok {
		t.Fatal("newest trace missing")
	}
	ids := tr.TraceIDs()
	if len(ids) != 4 || ids[3] != roots[9].TraceID() {
		t.Fatalf("TraceIDs = %v", ids)
	}

	// Per-trace span cap: spans beyond the cap are counted, not stored.
	root := tr.StartSpan("capped", "")
	for i := 0; i < 5; i++ {
		c := root.StartChild("child")
		c.End()
	}
	root.End()
	exp, _ := tr.Export(root.TraceID())
	if len(exp.Spans) != 2 || exp.Dropped != 4 {
		t.Fatalf("spans=%d dropped=%d, want 2/4", len(exp.Spans), exp.Dropped)
	}
}

func TestEventsRecorderIsSecondConsumer(t *testing.T) {
	rec := events.NewRecorder(0).WithoutWallClock()
	tr := New(Config{Events: rec})
	sp := tr.StartSpan("http /v1/run", "")
	c := sp.StartChild("cache.lookup")
	c.End()
	sp.End()

	evs := rec.Events()
	if len(evs) != 4 { // 2 begins + 2 ends
		t.Fatalf("%d events, want 4", len(evs))
	}
	track := "trace/" + sp.TraceID().Short()
	for _, e := range evs {
		if e.Cat != events.CatTrace || e.Track != track {
			t.Fatalf("event %+v not on the trace track %q", e, track)
		}
		if e.T != events.NoSimTime {
			t.Fatalf("span event carries sim time %v", e.T)
		}
	}
	if evs[0].Kind != events.Begin || evs[3].Kind != events.End {
		t.Fatalf("events not Begin..End ordered: %+v", evs)
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New(Config{MaxTraces: 32})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := tr.StartSpan(fmt.Sprintf("g%d", g), "")
				c := sp.StartChild("child")
				c.SetAttr("i", "x")
				c.End()
				sp.End()
				tr.Export(sp.TraceID())
				tr.TraceIDs()
			}
		}(g)
	}
	wg.Wait()
	if tr.Started() != 400 {
		t.Fatalf("started = %d, want 400", tr.Started())
	}
}

func TestIDUniqueness(t *testing.T) {
	tr := New(Config{MaxTraces: 2048})
	seen := map[TraceID]bool{}
	for i := 0; i < 1000; i++ {
		sp := tr.StartSpan("x", "")
		if seen[sp.TraceID()] {
			t.Fatalf("duplicate trace id after %d spans", i)
		}
		seen[sp.TraceID()] = true
		sp.End()
	}
}

func TestEndIdempotent(t *testing.T) {
	tr := New(Config{})
	sp := tr.StartSpan("once", "")
	sp.End()
	sp.End()
	exp, _ := tr.Export(sp.TraceID())
	if len(exp.Spans) != 1 {
		t.Fatalf("double End stored %d spans", len(exp.Spans))
	}
}
