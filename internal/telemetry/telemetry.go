// Package telemetry is the distributed-tracing layer of the repo: a
// dependency-free implementation of W3C Trace Context (traceparent)
// propagation plus an in-process span store, built so one request can be
// followed through the whole serving tier — HTTP handler → cache lookup →
// single-flight coalescing → pool queue wait → job execution →
// sim/monitor/diagnosis phases — and then retrieved as a self-contained
// JSON trace (GET /debug/traces/<id>) or opened in Perfetto.
//
// Design constraints, mirroring internal/obs and internal/events:
//
//  1. A nil tracer costs nothing. Every method on a nil *Tracer or nil
//     *Span is a single-branch no-op that never reads the clock and never
//     allocates (pinned by TestNilTracerZeroAlloc), so instrumented layers
//     need no "is tracing on?" flag of their own.
//  2. Bounded memory. The tracer retains the newest MaxTraces traces with
//     at most MaxSpansPerTrace spans each; older traces are evicted FIFO
//     and late spans of evicted traces are counted, not stored.
//  3. One emission point, two consumers. A span both lands in the trace
//     store and — when the tracer carries an events.Recorder — emits
//     Begin/End events into the flight recorder, so the span timeline and
//     the per-run event timeline stay correlated without double
//     instrumentation.
//  4. No dependencies beyond the standard library.
//
// Typical serving-tier wiring:
//
//	tr := telemetry.New(telemetry.Config{})
//	sp := tr.StartSpan("http /v1/run", r.Header.Get("traceparent"))
//	child := sp.StartChild("cache.lookup")
//	...
//	child.End()
//	sp.End()
//	exp, _ := tr.Export(sp.TraceID()) // JSON-serialisable trace
package telemetry

import (
	"crypto/rand"
	"encoding/binary"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"adassure/internal/events"
)

// Config tunes a Tracer. The zero value applies the defaults.
type Config struct {
	// MaxTraces bounds the number of retained traces (default 256). The
	// oldest trace is evicted when a new root span would exceed it.
	MaxTraces int
	// MaxSpansPerTrace bounds the spans stored per trace (default 512);
	// spans beyond the cap are counted as dropped, not stored.
	MaxSpansPerTrace int
	// Events, when non-nil, receives a Begin/End event pair per span
	// (category "trace") — the flight recorder is the second consumer of
	// the single span emission point.
	Events *events.Recorder
}

func (c *Config) defaults() {
	if c.MaxTraces <= 0 {
		c.MaxTraces = 256
	}
	if c.MaxSpansPerTrace <= 0 {
		c.MaxSpansPerTrace = 512
	}
}

// Link points from a span to a related span in another trace — the
// coalesced-request pattern: a waiter that attached to an in-flight
// execution links to the executing trace instead of duplicating its spans.
type Link struct {
	TraceID TraceID
	SpanID  SpanID
}

// SpanData is the immutable record of one finished span.
type SpanData struct {
	TraceID TraceID
	SpanID  SpanID
	Parent  SpanID // zero for root spans
	Name    string
	// Start and End are wall-clock Unix nanoseconds.
	Start int64
	End   int64
	// Attrs carries string evidence (route, status, cache disposition).
	Attrs map[string]string
	Links []Link
}

// traceRec is the per-trace span store.
type traceRec struct {
	spans   []SpanData
	dropped int
}

// Tracer assigns IDs, stores finished spans per trace and evicts oldest
// traces beyond the configured bound. All methods are nil-safe; a nil
// *Tracer produces nil *Spans whose methods are free no-ops.
type Tracer struct {
	cfg Config

	// idState seeds span/trace ID generation: a lock-free splitmix64
	// stream seeded from crypto/rand at construction, so IDs are unique
	// within and across processes without a syscall per span.
	idState atomic.Uint64

	mu      sync.Mutex
	traces  map[TraceID]*traceRec
	order   []TraceID // FIFO eviction queue, oldest first
	head    int       // index of the oldest live entry in order
	late    uint64    // spans dropped because their trace was evicted
	started uint64    // root spans started (traces created)
}

// New builds a tracer. A nil tracer (var t *Tracer) is also valid and
// disables tracing at zero cost.
func New(cfg Config) *Tracer {
	cfg.defaults()
	t := &Tracer{cfg: cfg, traces: make(map[TraceID]*traceRec)}
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err == nil {
		t.idState.Store(binary.LittleEndian.Uint64(seed[:]))
	} else {
		t.idState.Store(uint64(time.Now().UnixNano()))
	}
	return t
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// next returns the next 64-bit pseudo-random value (splitmix64). The
// atomic add gives every caller a distinct stream position; the mix makes
// consecutive outputs uncorrelated.
func (t *Tracer) next() uint64 {
	z := t.idState.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e9b5
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		binary.BigEndian.PutUint64(id[:], t.next())
	}
	return id
}

func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		binary.BigEndian.PutUint64(id[:8], t.next())
		binary.BigEndian.PutUint64(id[8:], t.next())
	}
	return id
}

// Span is one in-flight operation. A span is not safe for concurrent
// mutation: set attributes from the goroutine that owns it, then End
// exactly once (later Ends are ignored). The nil *Span is a valid no-op.
type Span struct {
	tracer *Tracer
	data   SpanData
	ended  bool
}

// StartSpan opens a root span. traceparent, when non-empty and valid W3C
// Trace Context, pins the trace ID and remote parent; otherwise a fresh
// trace ID is generated. The span's trace becomes retrievable via Export
// until evicted.
func (t *Tracer) StartSpan(name, traceparent string) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{tracer: t}
	sp.data.Name = name
	sp.data.SpanID = t.newSpanID()
	if tid, psid, _, err := ParseTraceParent(traceparent); err == nil {
		sp.data.TraceID = tid
		sp.data.Parent = psid
	} else {
		sp.data.TraceID = t.newTraceID()
	}
	sp.data.Start = time.Now().UnixNano()

	t.mu.Lock()
	t.started++
	if _, ok := t.traces[sp.data.TraceID]; !ok {
		for len(t.traces) >= t.cfg.MaxTraces && t.head < len(t.order) {
			delete(t.traces, t.order[t.head])
			t.order[t.head] = TraceID{}
			t.head++
		}
		// Compact the FIFO queue once the dead prefix dominates, so a
		// long-running server's eviction queue stays O(MaxTraces).
		if t.head > 64 && t.head*2 >= len(t.order) {
			n := copy(t.order, t.order[t.head:])
			t.order = t.order[:n]
			t.head = 0
		}
		t.traces[sp.data.TraceID] = &traceRec{}
		t.order = append(t.order, sp.data.TraceID)
	}
	t.mu.Unlock()

	t.cfg.Events.Begin(events.CatTrace, "trace/"+sp.data.TraceID.Short(), name, events.NoSimTime, nil)
	return sp
}

// StartChild opens a child span in the receiver's trace. On a nil span it
// returns nil, so instrumentation chains stay free when tracing is off.
func (s *Span) StartChild(name string) *Span {
	if s == nil || s.tracer == nil {
		return nil
	}
	child := &Span{tracer: s.tracer}
	child.data.Name = name
	child.data.TraceID = s.data.TraceID
	child.data.Parent = s.data.SpanID
	child.data.SpanID = s.tracer.newSpanID()
	child.data.Start = time.Now().UnixNano()
	s.tracer.cfg.Events.Begin(events.CatTrace, "trace/"+child.data.TraceID.Short(), name, events.NoSimTime, nil)
	return child
}

// SetAttr attaches one string attribute (route, disposition, error).
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	if s.data.Attrs == nil {
		s.data.Attrs = make(map[string]string, 4)
	}
	s.data.Attrs[key] = value
}

// SetFloat attaches one numeric attribute, formatted minimally.
func (s *Span) SetFloat(key string, value float64) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatFloat(value, 'g', -1, 64))
}

// SetInt attaches one integer attribute.
func (s *Span) SetInt(key string, value int64) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatInt(value, 10))
}

// AddLink points this span at a span in another trace (the coalesced
// waiter → executing run pattern).
func (s *Span) AddLink(trace TraceID, span SpanID) {
	if s == nil || trace.IsZero() {
		return
	}
	s.data.Links = append(s.data.Links, Link{TraceID: trace, SpanID: span})
}

// End finishes the span: it is stamped, stored in its trace and — when
// the tracer carries an events recorder — closed on the flight-recorder
// timeline. End is idempotent; only the first call records.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.data.End = time.Now().UnixNano()
	t := s.tracer

	t.mu.Lock()
	if rec, ok := t.traces[s.data.TraceID]; ok {
		if len(rec.spans) < t.cfg.MaxSpansPerTrace {
			rec.spans = append(rec.spans, s.data)
		} else {
			rec.dropped++
		}
	} else {
		t.late++
	}
	t.mu.Unlock()

	t.cfg.Events.End(events.CatTrace, "trace/"+s.data.TraceID.Short(), s.data.Name, events.NoSimTime, nil)
}

// Enabled reports whether the span records anything — the idiom for
// guarding attribute construction at instrumented call sites.
func (s *Span) Enabled() bool { return s != nil }

// TraceID returns the span's trace ID (zero for a nil span).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.data.TraceID
}

// SpanID returns the span's ID (zero for a nil span).
func (s *Span) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.data.SpanID
}

// TraceParent renders the span's W3C traceparent header value ("" for a
// nil span), for propagation to downstream processes and response headers.
func (s *Span) TraceParent() string {
	if s == nil {
		return ""
	}
	return FormatTraceParent(s.data.TraceID, s.data.SpanID, FlagSampled)
}

// Len reports the number of retained traces.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.traces)
}

// Started reports how many root spans (traces) were started.
func (t *Tracer) Started() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.started
}

// TraceIDs returns the retained trace IDs, oldest first.
func (t *Tracer) TraceIDs() []TraceID {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceID, 0, len(t.traces))
	for i := t.head; i < len(t.order); i++ {
		if _, ok := t.traces[t.order[i]]; ok {
			out = append(out, t.order[i])
		}
	}
	return out
}
