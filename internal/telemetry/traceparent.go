package telemetry

import (
	"encoding/hex"
	"fmt"
)

// TraceID is the 16-byte W3C trace identifier. The zero value means "no
// trace".
type TraceID [16]byte

// SpanID is the 8-byte W3C span (parent) identifier. The zero value means
// "no span".
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// IsZero reports whether the ID is the invalid all-zero value.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the ID as 32 lowercase hex digits ("" for the zero ID,
// which W3C Trace Context declares invalid).
func (id TraceID) String() string {
	if id.IsZero() {
		return ""
	}
	return hex.EncodeToString(id[:])
}

// String renders the ID as 16 lowercase hex digits ("" for the zero ID).
func (id SpanID) String() string {
	if id.IsZero() {
		return ""
	}
	return hex.EncodeToString(id[:])
}

// Short returns the first 8 hex digits of the trace ID — the compact form
// used for event-timeline track names ("" for the zero ID).
func (id TraceID) Short() string {
	if id.IsZero() {
		return ""
	}
	return hex.EncodeToString(id[:4])
}

// FlagSampled is the W3C trace-flags bit this tracer always sets: every
// retained trace is recorded.
const FlagSampled byte = 0x01

// ParseTraceID parses a 32-hex-digit trace ID (as it appears in
// /debug/traces/<id> URLs and X-Adassure-Trace headers).
func ParseTraceID(s string) (TraceID, error) {
	var id TraceID
	if len(s) != 32 {
		return id, fmt.Errorf("telemetry: trace id must be 32 hex digits, got %d", len(s))
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return id, fmt.Errorf("telemetry: trace id %q: %w", s, err)
	}
	if id.IsZero() {
		return id, fmt.Errorf("telemetry: all-zero trace id is invalid")
	}
	return id, nil
}

// ParseTraceParent parses a W3C Trace Context traceparent header value:
//
//	version "-" trace-id "-" parent-id "-" trace-flags
//	  00    -  32 hex    -   16 hex    -   2 hex
//
// Unknown (non-00) versions are accepted as long as the prefix matches
// the version-00 layout, per the spec's forward-compatibility rule;
// version 0xff and all-zero IDs are rejected.
func ParseTraceParent(h string) (TraceID, SpanID, byte, error) {
	var (
		tid   TraceID
		sid   SpanID
		flags [1]byte
	)
	if len(h) < 55 {
		return tid, sid, 0, fmt.Errorf("telemetry: traceparent too short (%d bytes)", len(h))
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return tid, sid, 0, fmt.Errorf("telemetry: traceparent %q: bad field separators", h)
	}
	var version [1]byte
	if _, err := hex.Decode(version[:], []byte(h[0:2])); err != nil {
		return tid, sid, 0, fmt.Errorf("telemetry: traceparent version: %w", err)
	}
	if version[0] == 0xff {
		return tid, sid, 0, fmt.Errorf("telemetry: traceparent version ff is invalid")
	}
	if version[0] == 0 && len(h) != 55 {
		return tid, sid, 0, fmt.Errorf("telemetry: version-00 traceparent must be 55 bytes, got %d", len(h))
	}
	if _, err := hex.Decode(tid[:], []byte(h[3:35])); err != nil {
		return tid, sid, 0, fmt.Errorf("telemetry: traceparent trace-id: %w", err)
	}
	if _, err := hex.Decode(sid[:], []byte(h[36:52])); err != nil {
		return tid, sid, 0, fmt.Errorf("telemetry: traceparent parent-id: %w", err)
	}
	if _, err := hex.Decode(flags[:], []byte(h[53:55])); err != nil {
		return tid, sid, 0, fmt.Errorf("telemetry: traceparent flags: %w", err)
	}
	if tid.IsZero() {
		return tid, sid, 0, fmt.Errorf("telemetry: all-zero trace-id is invalid")
	}
	if sid.IsZero() {
		return tid, sid, 0, fmt.Errorf("telemetry: all-zero parent-id is invalid")
	}
	return tid, sid, flags[0], nil
}

// FormatTraceParent renders a version-00 traceparent header value.
func FormatTraceParent(trace TraceID, span SpanID, flags byte) string {
	var buf [55]byte
	buf[0], buf[1] = '0', '0'
	buf[2] = '-'
	hex.Encode(buf[3:35], trace[:])
	buf[35] = '-'
	hex.Encode(buf[36:52], span[:])
	buf[52] = '-'
	hex.Encode(buf[53:55], []byte{flags})
	return string(buf[:])
}
