// Package vehicle models the ego vehicle: parameter sets, kinematic and
// dynamic bicycle models, and actuator dynamics (steering/throttle lag and
// rate limits). These are the plants the ADAssure methodology debugs
// controllers against; they substitute for the physical shuttle platform
// the original study drove on a test track.
package vehicle

import (
	"fmt"
	"math"
)

// Params describes a vehicle's geometry, mass properties and limits.
// The default set approximates a low-speed autonomous shuttle
// (iseAuto-class: short wheelbase, modest speed envelope).
type Params struct {
	// Wheelbase is the front-to-rear axle distance in metres.
	Wheelbase float64
	// MaxSteer is the steering-angle magnitude limit in radians.
	MaxSteer float64
	// MaxSteerRate is the steering slew-rate limit in rad/s.
	MaxSteerRate float64
	// MaxSpeed is the speed envelope in m/s.
	MaxSpeed float64
	// MaxAccel is the maximum forward acceleration in m/s².
	MaxAccel float64
	// MaxBrake is the maximum deceleration magnitude in m/s².
	MaxBrake float64
	// MaxLatAccel is the comfort/safety lateral-acceleration bound in m/s².
	MaxLatAccel float64
	// MaxJerk is the longitudinal jerk bound in m/s³ used by the planner
	// and the comfort assertions.
	MaxJerk float64

	// Dynamic-model parameters (unused by the kinematic model).
	Mass float64 // kg
	Iz   float64 // yaw inertia, kg·m²
	Lf   float64 // CG to front axle, m
	Lr   float64 // CG to rear axle, m
	Cf   float64 // front cornering stiffness, N/rad
	Cr   float64 // rear cornering stiffness, N/rad

	// SteerTimeConstant is the first-order steering-actuator lag in
	// seconds (0 disables the lag).
	SteerTimeConstant float64
	// AccelTimeConstant is the first-order drivetrain lag in seconds.
	AccelTimeConstant float64
}

// ShuttleParams returns the default parameter set: a low-speed autonomous
// shuttle similar to the platform class evaluated by the original study.
func ShuttleParams() Params {
	return Params{
		Wheelbase:         2.8,
		MaxSteer:          0.55, // ~31.5°
		MaxSteerRate:      0.8,
		MaxSpeed:          8.0, // ~29 km/h shuttle envelope
		MaxAccel:          1.5,
		MaxBrake:          3.0,
		MaxLatAccel:       2.5,
		MaxJerk:           2.0,
		Mass:              2200,
		Iz:                2600,
		Lf:                1.3,
		Lr:                1.5,
		Cf:                55000,
		Cr:                60000,
		SteerTimeConstant: 0.15,
		AccelTimeConstant: 0.25,
	}
}

// SedanParams returns a faster passenger-car parameter set used by the
// controller-comparison experiments to expose speed-dependent weaknesses.
func SedanParams() Params {
	return Params{
		Wheelbase:         2.7,
		MaxSteer:          0.52,
		MaxSteerRate:      1.2,
		MaxSpeed:          25.0,
		MaxAccel:          3.0,
		MaxBrake:          6.0,
		MaxLatAccel:       4.0,
		MaxJerk:           4.0,
		Mass:              1500,
		Iz:                2250,
		Lf:                1.2,
		Lr:                1.5,
		Cf:                80000,
		Cr:                88000,
		SteerTimeConstant: 0.1,
		AccelTimeConstant: 0.2,
	}
}

// Validate checks the parameter set for physical plausibility.
func (p Params) Validate() error {
	checks := []struct {
		ok   bool
		what string
	}{
		{p.Wheelbase > 0, "wheelbase must be positive"},
		{p.MaxSteer > 0 && p.MaxSteer < math.Pi/2, "max steer must be in (0, π/2)"},
		{p.MaxSteerRate > 0, "max steer rate must be positive"},
		{p.MaxSpeed > 0, "max speed must be positive"},
		{p.MaxAccel > 0, "max accel must be positive"},
		{p.MaxBrake > 0, "max brake must be positive"},
		{p.MaxLatAccel > 0, "max lateral accel must be positive"},
		{p.MaxJerk > 0, "max jerk must be positive"},
		{p.SteerTimeConstant >= 0, "steer time constant must be non-negative"},
		{p.AccelTimeConstant >= 0, "accel time constant must be non-negative"},
	}
	for _, c := range checks {
		if !c.ok {
			return fmt.Errorf("vehicle: invalid params: %s", c.what)
		}
	}
	return nil
}

// MinTurnRadius returns the minimum kinematic turning radius.
func (p Params) MinTurnRadius() float64 {
	return p.Wheelbase / math.Tan(p.MaxSteer)
}

// State is the full ground-truth state of the vehicle.
type State struct {
	X, Y    float64 // position, m
	Heading float64 // yaw, rad, normalised to (-π, π]
	Speed   float64 // longitudinal speed, m/s (≥ 0 in this simulator)
	YawRate float64 // rad/s
	Accel   float64 // realised longitudinal acceleration, m/s²
	Steer   float64 // realised steering angle at the wheels, rad
	Slip    float64 // lateral-velocity slip (dynamic model only), m/s
}

// Command is a controller's output for one step.
type Command struct {
	Steer float64 // desired steering angle, rad
	Accel float64 // desired longitudinal acceleration, m/s²
}
