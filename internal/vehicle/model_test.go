package vehicle

import (
	"math"
	"testing"
	"testing/quick"

	"adassure/internal/geom"
)

// instantParams returns shuttle params with actuator lags removed and
// generous rate limits so kinematic invariants can be checked exactly.
func instantParams() Params {
	p := ShuttleParams()
	p.SteerTimeConstant = 0
	p.AccelTimeConstant = 0
	p.MaxSteerRate = 100
	return p
}

func TestParamsValidate(t *testing.T) {
	if err := ShuttleParams().Validate(); err != nil {
		t.Fatalf("shuttle params invalid: %v", err)
	}
	if err := SedanParams().Validate(); err != nil {
		t.Fatalf("sedan params invalid: %v", err)
	}
	bad := ShuttleParams()
	bad.Wheelbase = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative wheelbase accepted")
	}
	bad = ShuttleParams()
	bad.MaxSteer = 2
	if err := bad.Validate(); err == nil {
		t.Error("max steer >= π/2 accepted")
	}
}

func TestMinTurnRadius(t *testing.T) {
	p := ShuttleParams()
	want := p.Wheelbase / math.Tan(p.MaxSteer)
	if got := p.MinTurnRadius(); math.Abs(got-want) > 1e-12 {
		t.Errorf("MinTurnRadius = %g, want %g", got, want)
	}
}

func TestKinematicStraightLine(t *testing.T) {
	m := NewKinematic(instantParams())
	s := State{Speed: 5}
	for i := 0; i < 100; i++ {
		s = m.Step(s, Command{Steer: 0, Accel: 0}, 0.01)
	}
	// 1 second at 5 m/s straight ahead.
	if math.Abs(s.X-5) > 1e-6 || math.Abs(s.Y) > 1e-9 {
		t.Errorf("straight line end = (%.6f, %.6f), want (5, 0)", s.X, s.Y)
	}
	if math.Abs(s.Heading) > 1e-12 {
		t.Errorf("heading drifted to %g", s.Heading)
	}
}

func TestKinematicCircleRadius(t *testing.T) {
	p := instantParams()
	m := NewKinematic(p)
	steer := 0.3
	wantR := p.Wheelbase / math.Tan(steer)
	s := State{Speed: 3, Steer: steer}
	// Drive a full loop; track max distance from the turning center.
	cx, cy := 0.0, wantR // center is left of the start for positive steer
	dt := 0.005
	maxErr := 0.0
	for i := 0; i < 20000; i++ {
		s = m.Step(s, Command{Steer: steer, Accel: 0}, dt)
		r := math.Hypot(s.X-cx, s.Y-cy)
		if e := math.Abs(r - wantR); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 0.02*wantR {
		t.Errorf("circle radius error %.4f m exceeds 2%% of R=%.2f", maxErr, wantR)
	}
}

func TestKinematicSpeedSaturation(t *testing.T) {
	p := instantParams()
	m := NewKinematic(p)
	s := State{Speed: p.MaxSpeed - 0.1}
	for i := 0; i < 1000; i++ {
		s = m.Step(s, Command{Accel: 10}, 0.01)
	}
	if s.Speed > p.MaxSpeed+1e-9 {
		t.Errorf("speed %g exceeds cap %g", s.Speed, p.MaxSpeed)
	}
	// Speed never goes negative under full brake.
	for i := 0; i < 1000; i++ {
		s = m.Step(s, Command{Accel: -100}, 0.01)
	}
	if s.Speed < 0 {
		t.Errorf("speed went negative: %g", s.Speed)
	}
}

func TestKinematicSteerSaturation(t *testing.T) {
	p := ShuttleParams()
	m := NewKinematic(p)
	s := State{Speed: 2}
	for i := 0; i < 500; i++ {
		s = m.Step(s, Command{Steer: 10}, 0.01)
		if math.Abs(s.Steer) > p.MaxSteer+1e-12 {
			t.Fatalf("steer %g exceeds limit %g", s.Steer, p.MaxSteer)
		}
	}
}

func TestKinematicSteerRateLimit(t *testing.T) {
	p := ShuttleParams()
	p.SteerTimeConstant = 0 // isolate the rate limit
	m := NewKinematic(p)
	s := State{Speed: 2}
	dt := 0.01
	prev := s.Steer
	for i := 0; i < 200; i++ {
		s = m.Step(s, Command{Steer: p.MaxSteer}, dt)
		if rate := math.Abs(s.Steer-prev) / dt; rate > p.MaxSteerRate+1e-9 {
			t.Fatalf("steer rate %g exceeds limit %g", rate, p.MaxSteerRate)
		}
		prev = s.Steer
	}
}

func TestKinematicRejectsNonFiniteCommands(t *testing.T) {
	m := NewKinematic(ShuttleParams())
	s := State{Speed: 3, Steer: 0.1}
	next := m.Step(s, Command{Steer: math.NaN(), Accel: math.Inf(1)}, 0.01)
	if math.IsNaN(next.X) || math.IsNaN(next.Heading) || math.IsNaN(next.Speed) {
		t.Error("NaN command leaked into state")
	}
	// NaN steer holds current steering; Inf accel brakes.
	if next.Accel > 0 {
		t.Errorf("non-finite accel should brake, got %g", next.Accel)
	}
}

func TestKinematicStepPanicsOnBadDt(t *testing.T) {
	m := NewKinematic(ShuttleParams())
	defer func() {
		if recover() == nil {
			t.Error("dt<=0 should panic")
		}
	}()
	m.Step(State{}, Command{}, 0)
}

func TestKinematicDeterminismProperty(t *testing.T) {
	m := NewKinematic(ShuttleParams())
	f := func(steer, accel, speed float64) bool {
		if math.IsNaN(steer) || math.IsNaN(accel) || math.IsNaN(speed) {
			return true
		}
		s := State{Speed: math.Abs(math.Mod(speed, 8))}
		cmd := Command{Steer: math.Mod(steer, 1), Accel: math.Mod(accel, 3)}
		a := m.Step(s, cmd, 0.02)
		b := m.Step(s, cmd, 0.02)
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKinematicStateStaysFiniteProperty(t *testing.T) {
	m := NewKinematic(ShuttleParams())
	f := func(steer, accel float64, n uint8) bool {
		s := State{Speed: 2}
		cmd := Command{Steer: steer, Accel: accel} // arbitrary, incl. NaN/Inf from quick
		for i := 0; i < int(n%50)+1; i++ {
			s = m.Step(s, cmd, 0.02)
		}
		return !math.IsNaN(s.X) && !math.IsNaN(s.Y) && !math.IsNaN(s.Heading) &&
			!math.IsNaN(s.Speed) && math.Abs(s.Heading) <= math.Pi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDynamicMatchesKinematicAtLowSpeed(t *testing.T) {
	p := ShuttleParams()
	kin := NewKinematic(p)
	dyn := NewDynamic(p)
	s := State{Speed: 0.8} // below blend-low threshold
	cmd := Command{Steer: 0.2, Accel: 0}
	a := kin.Step(s, cmd, 0.01)
	b := dyn.Step(s, cmd, 0.01)
	if math.Abs(a.X-b.X) > 1e-12 || math.Abs(a.Y-b.Y) > 1e-12 {
		t.Error("dynamic model should equal kinematic below blend speed")
	}
}

func TestDynamicStableStraightAtSpeed(t *testing.T) {
	p := SedanParams()
	m := NewDynamic(p)
	s := State{Speed: 15}
	for i := 0; i < 2000; i++ {
		s = m.Step(s, Command{Steer: 0, Accel: 0}, 0.01)
	}
	if math.Abs(s.Y) > 0.01 || math.Abs(s.Slip) > 0.01 || math.Abs(s.YawRate) > 0.01 {
		t.Errorf("straight-line drift: y=%g slip=%g r=%g", s.Y, s.Slip, s.YawRate)
	}
}

func TestDynamicSteadyStateTurn(t *testing.T) {
	p := SedanParams()
	m := NewDynamic(p)
	s := State{Speed: 10}
	steer := 0.05
	for i := 0; i < 4000; i++ {
		s = m.Step(s, Command{Steer: steer, Accel: 0}, 0.005)
	}
	// Steady-state yaw rate should be near v·δ/(L + K·v²) with understeer
	// gradient K = m(Lr·Cr − Lf·Cf)/(Cf·Cr·L)... just require the sign and
	// a sane band around the kinematic value.
	kinYaw := s.Speed * math.Tan(steer) / p.Wheelbase
	if s.YawRate <= 0 {
		t.Fatalf("yaw rate %g should be positive for left steer", s.YawRate)
	}
	if s.YawRate > kinYaw*1.2 || s.YawRate < kinYaw*0.5 {
		t.Errorf("steady-state yaw %g outside plausible band around kinematic %g", s.YawRate, kinYaw)
	}
}

func TestDynamicConstructorValidation(t *testing.T) {
	p := ShuttleParams()
	p.Mass = 0
	defer func() {
		if recover() == nil {
			t.Error("zero mass should panic")
		}
	}()
	NewDynamic(p)
}

func TestModelNames(t *testing.T) {
	if NewKinematic(ShuttleParams()).Name() == "" {
		t.Error("kinematic name empty")
	}
	if NewDynamic(ShuttleParams()).Name() == "" {
		t.Error("dynamic name empty")
	}
}

func TestHeadingAlwaysNormalized(t *testing.T) {
	m := NewKinematic(instantParams())
	s := State{Speed: 5}
	for i := 0; i < 5000; i++ {
		s = m.Step(s, Command{Steer: 0.5, Accel: 0}, 0.02)
		if s.Heading <= -math.Pi || s.Heading > math.Pi {
			t.Fatalf("heading %g escaped (-π, π] at step %d", s.Heading, i)
		}
	}
	_ = geom.NormalizeAngle // keep import for clarity of intent
}
