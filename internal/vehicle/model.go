package vehicle

import (
	"fmt"
	"math"

	"adassure/internal/geom"
)

// Model advances a vehicle state under a command. Implementations are the
// plants under test; they must be deterministic.
type Model interface {
	// Step integrates the state forward by dt seconds under cmd and
	// returns the new state. dt must be positive.
	Step(s State, cmd Command, dt float64) State
	// Params returns the parameter set the model was built with.
	Params() Params
	// Name identifies the model in reports.
	Name() string
}

// Kinematic is the rear-axle kinematic bicycle model:
//
//	ẋ = v cos θ, ẏ = v sin θ, θ̇ = v tan(δ)/L, v̇ = a
//
// with first-order actuator lags and rate/magnitude saturation applied to
// the commanded steering and acceleration. It is the standard plant for
// low-speed waypoint-following studies.
type Kinematic struct {
	p Params
}

// NewKinematic builds a kinematic bicycle model. It panics on invalid
// parameters — model construction is programmer-controlled configuration,
// not runtime input.
func NewKinematic(p Params) *Kinematic {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Kinematic{p: p}
}

// Params implements Model.
func (m *Kinematic) Params() Params { return m.p }

// Name implements Model.
func (m *Kinematic) Name() string { return "kinematic-bicycle" }

// applyActuators realises the commanded steer/accel through saturation,
// slew limiting and first-order lag, returning the realised values.
func applyActuators(p Params, s State, cmd Command, dt float64) (steer, accel float64) {
	// Sanitise non-finite commands to safe values (hold steering, brake).
	steerCmd := cmd.Steer
	if math.IsNaN(steerCmd) || math.IsInf(steerCmd, 0) {
		steerCmd = s.Steer
	}
	accelCmd := cmd.Accel
	if math.IsNaN(accelCmd) || math.IsInf(accelCmd, 0) {
		accelCmd = -p.MaxBrake
	}
	steerCmd = geom.Clamp(steerCmd, -p.MaxSteer, p.MaxSteer)
	accelCmd = geom.Clamp(accelCmd, -p.MaxBrake, p.MaxAccel)

	// First-order lag toward the command.
	steer = steerCmd
	if p.SteerTimeConstant > 0 {
		alpha := 1 - math.Exp(-dt/p.SteerTimeConstant)
		steer = s.Steer + (steerCmd-s.Steer)*alpha
	}
	// Slew limit.
	maxDelta := p.MaxSteerRate * dt
	steer = geom.Clamp(steer, s.Steer-maxDelta, s.Steer+maxDelta)
	steer = geom.Clamp(steer, -p.MaxSteer, p.MaxSteer)

	accel = accelCmd
	if p.AccelTimeConstant > 0 {
		alpha := 1 - math.Exp(-dt/p.AccelTimeConstant)
		accel = s.Accel + (accelCmd-s.Accel)*alpha
	}
	accel = geom.Clamp(accel, -p.MaxBrake, p.MaxAccel)
	return steer, accel
}

// Step implements Model using RK2 (midpoint) integration of the kinematic
// equations, which keeps circular arcs accurate at simulator step sizes.
func (m *Kinematic) Step(s State, cmd Command, dt float64) State {
	if dt <= 0 {
		panic(fmt.Sprintf("vehicle: non-positive dt %g", dt))
	}
	p := m.p
	steer, accel := applyActuators(p, s, cmd, dt)

	v0 := s.Speed
	v1 := geom.Clamp(v0+accel*dt, 0, p.MaxSpeed)
	vMid := (v0 + v1) / 2
	yawRate := vMid * math.Tan(steer) / p.Wheelbase
	thMid := s.Heading + yawRate*dt/2

	next := State{
		X:       s.X + vMid*math.Cos(thMid)*dt,
		Y:       s.Y + vMid*math.Sin(thMid)*dt,
		Heading: geom.NormalizeAngle(s.Heading + yawRate*dt),
		Speed:   v1,
		YawRate: yawRate,
		Accel:   accel,
		Steer:   steer,
	}
	return next
}

// Dynamic is a linear single-track (dynamic bicycle) model with lateral
// tire forces linear in slip angle. At low speed it blends into the
// kinematic model to avoid the well-known singularity at v→0.
type Dynamic struct {
	p       Params
	kin     *Kinematic
	blendLo float64 // below this speed: pure kinematic
	blendHi float64 // above this speed: pure dynamic
}

// NewDynamic builds a dynamic bicycle model.
func NewDynamic(p Params) *Dynamic {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if p.Mass <= 0 || p.Iz <= 0 || p.Lf <= 0 || p.Lr <= 0 || p.Cf <= 0 || p.Cr <= 0 {
		panic("vehicle: dynamic model requires positive mass, inertia, axle distances and cornering stiffnesses")
	}
	return &Dynamic{p: p, kin: NewKinematic(p), blendLo: 1.0, blendHi: 3.0}
}

// Params implements Model.
func (m *Dynamic) Params() Params { return m.p }

// Name implements Model.
func (m *Dynamic) Name() string { return "dynamic-bicycle" }

// Step implements Model.
func (m *Dynamic) Step(s State, cmd Command, dt float64) State {
	if dt <= 0 {
		panic(fmt.Sprintf("vehicle: non-positive dt %g", dt))
	}
	kin := m.kin.Step(s, cmd, dt)
	if s.Speed <= m.blendLo {
		return kin
	}
	dyn := m.stepDynamic(s, cmd, dt)
	if s.Speed >= m.blendHi {
		return dyn
	}
	// Linear blend in the transition band.
	w := (s.Speed - m.blendLo) / (m.blendHi - m.blendLo)
	return State{
		X:       kin.X*(1-w) + dyn.X*w,
		Y:       kin.Y*(1-w) + dyn.Y*w,
		Heading: geom.AngleLerp(kin.Heading, dyn.Heading, w),
		Speed:   kin.Speed*(1-w) + dyn.Speed*w,
		YawRate: kin.YawRate*(1-w) + dyn.YawRate*w,
		Accel:   kin.Accel*(1-w) + dyn.Accel*w,
		Steer:   kin.Steer*(1-w) + dyn.Steer*w,
		Slip:    dyn.Slip * w,
	}
}

func (m *Dynamic) stepDynamic(s State, cmd Command, dt float64) State {
	p := m.p
	steer, accel := applyActuators(p, s, cmd, dt)

	vx := math.Max(s.Speed, 0.5) // longitudinal speed, floored for stability
	vy := s.Slip
	r := s.YawRate

	// Slip angles (small-angle linear tire model).
	alphaF := math.Atan2(vy+p.Lf*r, vx) - steer
	alphaV := math.Atan2(vy-p.Lr*r, vx)
	Fyf := -p.Cf * alphaF
	Fyr := -p.Cr * alphaV

	// Lateral and yaw dynamics (explicit Euler; dt is small and the linear
	// tire model is well-damped at shuttle speeds).
	vyDot := (Fyf*math.Cos(steer)+Fyr)/p.Mass - vx*r
	rDot := (p.Lf*Fyf*math.Cos(steer) - p.Lr*Fyr) / p.Iz

	vyNext := vy + vyDot*dt
	rNext := r + rDot*dt
	vxNext := geom.Clamp(s.Speed+accel*dt, 0, p.MaxSpeed)

	thMid := s.Heading + rNext*dt/2
	cos, sin := math.Cos(thMid), math.Sin(thMid)
	// World-frame velocity from body-frame (vx, vy).
	dx := (vx*cos - vy*sin) * dt
	dy := (vx*sin + vy*cos) * dt

	return State{
		X:       s.X + dx,
		Y:       s.Y + dy,
		Heading: geom.NormalizeAngle(s.Heading + rNext*dt),
		Speed:   vxNext,
		YawRate: rNext,
		Accel:   accel,
		Steer:   steer,
		Slip:    vyNext,
	}
}

var (
	_ Model = (*Kinematic)(nil)
	_ Model = (*Dynamic)(nil)
)
