package attacks

import (
	"strings"
	"testing"

	"adassure/internal/geom"
)

func mustStep(t *testing.T, win Window, off geom.Vec2) *StepSpoof {
	t.Helper()
	a, err := NewStepSpoof(win, off)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestSequenceValidation(t *testing.T) {
	if _, err := NewSequence(); err == nil {
		t.Error("empty sequence accepted")
	}
	a := mustStep(t, Window{Start: 10, End: 20}, geom.V(0, 5))
	b := mustStep(t, Window{Start: 15, End: 25}, geom.V(0, 5))
	if _, err := NewSequence(a, b); err == nil {
		t.Error("overlapping windows accepted")
	}
	// Open-ended window not last.
	open := mustStep(t, Window{Start: 5}, geom.V(0, 5))
	late := mustStep(t, Window{Start: 30, End: 40}, geom.V(0, 5))
	if _, err := NewSequence(open, late); err == nil {
		t.Error("open-ended window before another accepted")
	}
}

func TestSequenceAppliesStageInWindow(t *testing.T) {
	first := mustStep(t, Window{Start: 10, End: 20}, geom.V(0, 5))
	second := mustStep(t, Window{Start: 30, End: 40}, geom.V(3, 0))
	seq, err := NewSequence(second, first) // construction order irrelevant
	if err != nil {
		t.Fatal(err)
	}
	// Sorted: hull window 10..40.
	if w := seq.Window(); w.Start != 10 || w.End != 40 {
		t.Errorf("hull window = %+v", w)
	}
	if !strings.Contains(seq.Name(), "→") {
		t.Errorf("sequence name = %q", seq.Name())
	}
	check := func(ts float64, want geom.Vec2) {
		t.Helper()
		out, deliver := seq.Apply(fixAt(ts, 1, 1), ts)
		if !deliver || out.Pos != want {
			t.Errorf("t=%g: pos=%v deliver=%v, want %v", ts, out.Pos, deliver, want)
		}
	}
	check(5, geom.V(1, 1))  // before everything
	check(15, geom.V(1, 6)) // first stage active
	check(25, geom.V(1, 1)) // between stages
	check(35, geom.V(4, 1)) // second stage active
	check(45, geom.V(1, 1)) // after everything
}

func TestSequenceStatefulStageCaptures(t *testing.T) {
	// A freeze in the second stage must capture pass-through traffic from
	// before its window even though a first stage ran earlier.
	step := mustStep(t, Window{Start: 10, End: 15}, geom.V(0, 5))
	freeze, err := NewFreeze(Window{Start: 30, End: 40})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := NewSequence(step, freeze)
	if err != nil {
		t.Fatal(err)
	}
	// Traffic at t=25 (quiet period): freeze records it.
	seq.Apply(fixAt(25, 7, 8), 25)
	// At t=35 the freeze stage must replay (7,8) regardless of input.
	out, _ := seq.Apply(fixAt(35, 100, 100), 35)
	if out.Pos != geom.V(7, 8) {
		t.Errorf("freeze stage delivered %v, want captured (7,8)", out.Pos)
	}
}

func TestSequenceStages(t *testing.T) {
	a := mustStep(t, Window{Start: 10, End: 20}, geom.V(0, 5))
	b := mustStep(t, Window{Start: 30, End: 40}, geom.V(0, 5))
	seq, err := NewSequence(a, b)
	if err != nil {
		t.Fatal(err)
	}
	st := seq.Stages()
	if len(st) != 2 || st[0].Window().Start != 10 {
		t.Errorf("stages = %v", st)
	}
	if seq.Class() != ClassStepSpoof {
		t.Errorf("sequence class = %s", seq.Class())
	}
}
