// Package attacks implements the sensor-manipulation framework used to
// probe control-algorithm weaknesses: parameterised transforms on the
// GNSS/IMU/odometry channels with schedulable activation windows. Each
// attack carries a Class label that serves as diagnosis ground truth in the
// experiments. The package substitutes for the hardware spoofing rig of
// the original study; the attack taxonomy (step spoof, gradual drift,
// replay, freeze, delay, dropout, noise inflation, meander) is the standard
// AV-security set.
package attacks

import (
	"fmt"
	"math"
	"math/rand"

	"adassure/internal/geom"
	"adassure/internal/sensors"
)

// Class identifies the attack family; it is the ground-truth label the
// diagnosis engine is scored against.
type Class string

// Attack classes.
const (
	ClassNone           Class = "none"
	ClassStepSpoof      Class = "gnss-step-spoof"
	ClassDriftSpoof     Class = "gnss-drift-spoof"
	ClassReplay         Class = "gnss-replay"
	ClassFreeze         Class = "gnss-freeze"
	ClassDelay          Class = "gnss-delay"
	ClassDropout        Class = "gnss-dropout"
	ClassNoiseInflation Class = "gnss-noise-inflation"
	ClassMeander        Class = "gnss-meander"
	ClassIMUHeadingBias Class = "imu-heading-bias"
	ClassOdomScale      Class = "odom-scale"
)

// Window is a half-open activation interval [Start, End). A zero End means
// "until the end of the run".
type Window struct {
	Start, End float64
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t float64) bool {
	if t < w.Start {
		return false
	}
	return w.End == 0 || t < w.End
}

// Validate checks the window is well-formed.
func (w Window) Validate() error {
	if w.Start < 0 {
		return fmt.Errorf("attacks: window start %g is negative", w.Start)
	}
	if w.End != 0 && w.End <= w.Start {
		return fmt.Errorf("attacks: window end %g not after start %g", w.End, w.Start)
	}
	return nil
}

// GNSSAttack transforms the GNSS fix stream. Apply is called once per fix
// in delivery order; deliver=false drops the fix entirely.
type GNSSAttack interface {
	// Name identifies the attack instance in reports.
	Name() string
	// Class returns the attack family for diagnosis ground truth.
	Class() Class
	// Window returns the activation window.
	Window() Window
	// Apply transforms a fix observed at time t.
	Apply(fix sensors.GNSSFix, t float64) (out sensors.GNSSFix, deliver bool)
}

// base carries the fields shared by all attacks.
type base struct {
	name  string
	class Class
	win   Window
}

func (b base) Name() string   { return b.name }
func (b base) Class() Class   { return b.class }
func (b base) Window() Window { return b.win }

// StepSpoof instantly offsets the reported GNSS position by a fixed vector
// for the duration of the window — the classic position-jump spoof.
type StepSpoof struct {
	base
	Offset geom.Vec2
}

// NewStepSpoof constructs a step spoofing attack.
func NewStepSpoof(win Window, offset geom.Vec2) (*StepSpoof, error) {
	if err := win.Validate(); err != nil {
		return nil, err
	}
	if !offset.IsFinite() || offset.Norm() == 0 {
		return nil, fmt.Errorf("attacks: step spoof needs a finite non-zero offset, got %v", offset)
	}
	return &StepSpoof{base: base{name: fmt.Sprintf("step-spoof(%.1fm)", offset.Norm()), class: ClassStepSpoof, win: win}, Offset: offset}, nil
}

// Apply implements GNSSAttack.
func (a *StepSpoof) Apply(fix sensors.GNSSFix, t float64) (sensors.GNSSFix, bool) {
	if a.win.Contains(t) {
		fix.Pos = fix.Pos.Add(a.Offset)
	}
	return fix, true
}

// DriftSpoof offsets the reported position by a vector growing linearly in
// time from attack onset — the slow "pull-off-the-road" spoof that evades
// naive jump detectors.
type DriftSpoof struct {
	base
	Direction geom.Vec2 // unit direction of the drift
	Rate      float64   // m/s of accumulated offset
	MaxOffset float64   // saturation, 0 = unbounded
}

// NewDriftSpoof constructs a gradual drift attack.
func NewDriftSpoof(win Window, direction geom.Vec2, rate, maxOffset float64) (*DriftSpoof, error) {
	if err := win.Validate(); err != nil {
		return nil, err
	}
	if !direction.IsFinite() || direction.Norm() == 0 {
		return nil, fmt.Errorf("attacks: drift spoof needs a non-zero direction")
	}
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return nil, fmt.Errorf("attacks: drift rate must be a positive finite number, got %g", rate)
	}
	if maxOffset < 0 {
		return nil, fmt.Errorf("attacks: max offset must be non-negative, got %g", maxOffset)
	}
	return &DriftSpoof{
		base:      base{name: fmt.Sprintf("drift-spoof(%.2fm/s)", rate), class: ClassDriftSpoof, win: win},
		Direction: direction.Unit(), Rate: rate, MaxOffset: maxOffset,
	}, nil
}

// Apply implements GNSSAttack.
func (a *DriftSpoof) Apply(fix sensors.GNSSFix, t float64) (sensors.GNSSFix, bool) {
	if a.win.Contains(t) {
		mag := a.Rate * (t - a.win.Start)
		if a.MaxOffset > 0 && mag > a.MaxOffset {
			mag = a.MaxOffset
		}
		fix.Pos = fix.Pos.Add(a.Direction.Scale(mag))
	}
	return fix, true
}

// Replay records fixes during a capture period before the window and then
// re-delivers them (time-shifted) during the window, hiding the vehicle's
// real motion behind stale positions.
type Replay struct {
	base
	CaptureLead float64 // seconds of history to replay from
	buf         []sensors.GNSSFix
	idx         int
}

// NewReplay constructs a replay attack. captureLead is how far back the
// replayed segment starts (e.g. 10 → during the window the victim sees the
// fixes from 10 s ago).
func NewReplay(win Window, captureLead float64) (*Replay, error) {
	if err := win.Validate(); err != nil {
		return nil, err
	}
	if captureLead <= 0 {
		return nil, fmt.Errorf("attacks: replay capture lead must be positive, got %g", captureLead)
	}
	if win.Start < captureLead {
		return nil, fmt.Errorf("attacks: replay window start %g must be >= capture lead %g", win.Start, captureLead)
	}
	return &Replay{base: base{name: fmt.Sprintf("replay(-%.0fs)", captureLead), class: ClassReplay, win: win}, CaptureLead: captureLead}, nil
}

// Apply implements GNSSAttack.
func (a *Replay) Apply(fix sensors.GNSSFix, t float64) (sensors.GNSSFix, bool) {
	if !a.win.Contains(t) {
		if t < a.win.Start {
			a.buf = append(a.buf, fix) // record pre-attack traffic
		}
		return fix, true
	}
	// Find the recorded fix from captureLead seconds ago.
	target := t - a.CaptureLead
	for a.idx < len(a.buf)-1 && a.buf[a.idx+1].T <= target {
		a.idx++
	}
	if len(a.buf) == 0 {
		return fix, true // nothing captured; degrade to pass-through
	}
	replayed := a.buf[a.idx]
	replayed.T = fix.T // re-stamp so the receiver sees a fresh fix
	return replayed, true
}

// Freeze holds the last pre-attack fix for the whole window (a jamming-
// induced receiver latch-up, or a spoofer pinning the position).
type Freeze struct {
	base
	last  sensors.GNSSFix
	valid bool
}

// NewFreeze constructs a freeze attack.
func NewFreeze(win Window) (*Freeze, error) {
	if err := win.Validate(); err != nil {
		return nil, err
	}
	return &Freeze{base: base{name: "freeze", class: ClassFreeze, win: win}}, nil
}

// Apply implements GNSSAttack.
func (a *Freeze) Apply(fix sensors.GNSSFix, t float64) (sensors.GNSSFix, bool) {
	if !a.win.Contains(t) {
		a.last = fix
		a.valid = true
		return fix, true
	}
	if !a.valid {
		return fix, true
	}
	frozen := a.last
	frozen.T = fix.T // receiver timestamps keep advancing; content is stale
	return frozen, true
}

// Delay adds extra delivery latency to every fix in the window, modelling a
// man-in-the-middle buffering the channel.
type Delay struct {
	base
	Extra float64
	queue []sensors.GNSSFix
}

// NewDelay constructs a delay attack adding extra seconds of latency.
func NewDelay(win Window, extra float64) (*Delay, error) {
	if err := win.Validate(); err != nil {
		return nil, err
	}
	if extra <= 0 {
		return nil, fmt.Errorf("attacks: delay must be positive, got %g", extra)
	}
	return &Delay{base: base{name: fmt.Sprintf("delay(+%.2fs)", extra), class: ClassDelay, win: win}, Extra: extra}, nil
}

// Apply implements GNSSAttack. Fixes arriving during the window are held in
// a FIFO until their extra latency has elapsed; release is quantised to the
// arrival of subsequent fixes, adding at most one GNSS period — negligible
// against the attack's own delay. The head of the queue is released when
// due, so ordering is preserved and the content delivered late is stale by
// the configured amount, which is the essence of the attack.
func (a *Delay) Apply(fix sensors.GNSSFix, t float64) (sensors.GNSSFix, bool) {
	if a.win.Contains(t) {
		fix.T += a.Extra
	}
	a.queue = append(a.queue, fix)
	if a.queue[0].T <= t+1e-9 {
		head := a.queue[0]
		a.queue = a.queue[1:]
		return head, true
	}
	return sensors.GNSSFix{}, false
}

// Dropout drops fixes entirely during the window (jamming / DoS). Ratio 1
// drops everything; ratio in (0,1) drops that fraction, deterministically
// seeded.
type Dropout struct {
	base
	Ratio float64
	rng   *rand.Rand
}

// NewDropout constructs a dropout/DoS attack.
func NewDropout(win Window, ratio float64, seed int64) (*Dropout, error) {
	if err := win.Validate(); err != nil {
		return nil, err
	}
	if ratio <= 0 || ratio > 1 {
		return nil, fmt.Errorf("attacks: dropout ratio must be in (0,1], got %g", ratio)
	}
	return &Dropout{
		base:  base{name: fmt.Sprintf("dropout(%.0f%%)", ratio*100), class: ClassDropout, win: win},
		Ratio: ratio,
		rng:   rand.New(rand.NewSource(seed)),
	}, nil
}

// Apply implements GNSSAttack.
func (a *Dropout) Apply(fix sensors.GNSSFix, t float64) (sensors.GNSSFix, bool) {
	if a.win.Contains(t) && (a.Ratio >= 1 || a.rng.Float64() < a.Ratio) {
		return sensors.GNSSFix{}, false
	}
	return fix, true
}

// NoiseInflation adds extra zero-mean position noise during the window,
// modelling meaconing or degraded constellation geometry.
type NoiseInflation struct {
	base
	StdDev float64
	rng    *rand.Rand
}

// NewNoiseInflation constructs a noise-inflation attack.
func NewNoiseInflation(win Window, stddev float64, seed int64) (*NoiseInflation, error) {
	if err := win.Validate(); err != nil {
		return nil, err
	}
	if stddev <= 0 {
		return nil, fmt.Errorf("attacks: noise stddev must be positive, got %g", stddev)
	}
	return &NoiseInflation{
		base:   base{name: fmt.Sprintf("noise(%.1fm)", stddev), class: ClassNoiseInflation, win: win},
		StdDev: stddev,
		rng:    rand.New(rand.NewSource(seed)),
	}, nil
}

// Apply implements GNSSAttack.
func (a *NoiseInflation) Apply(fix sensors.GNSSFix, t float64) (sensors.GNSSFix, bool) {
	if a.win.Contains(t) {
		fix.Pos = fix.Pos.Add(geom.V(a.rng.NormFloat64()*a.StdDev, a.rng.NormFloat64()*a.StdDev))
	}
	return fix, true
}

// Meander superimposes a slow sinusoidal lateral offset on the position —
// an adaptive spoof designed to oscillate the victim's controller.
type Meander struct {
	base
	Amplitude float64
	Period    float64
	Direction geom.Vec2
}

// NewMeander constructs a meander attack.
func NewMeander(win Window, amplitude, period float64, direction geom.Vec2) (*Meander, error) {
	if err := win.Validate(); err != nil {
		return nil, err
	}
	if amplitude <= 0 || period <= 0 {
		return nil, fmt.Errorf("attacks: meander amplitude and period must be positive")
	}
	if !direction.IsFinite() || direction.Norm() == 0 {
		return nil, fmt.Errorf("attacks: meander needs a non-zero direction")
	}
	return &Meander{
		base:      base{name: fmt.Sprintf("meander(%.1fm/%.1fs)", amplitude, period), class: ClassMeander, win: win},
		Amplitude: amplitude, Period: period, Direction: direction.Unit(),
	}, nil
}

// Apply implements GNSSAttack.
func (a *Meander) Apply(fix sensors.GNSSFix, t float64) (sensors.GNSSFix, bool) {
	if a.win.Contains(t) {
		phase := 2 * math.Pi * (t - a.win.Start) / a.Period
		fix.Pos = fix.Pos.Add(a.Direction.Scale(a.Amplitude * math.Sin(phase)))
	}
	return fix, true
}

var (
	_ GNSSAttack = (*StepSpoof)(nil)
	_ GNSSAttack = (*DriftSpoof)(nil)
	_ GNSSAttack = (*Replay)(nil)
	_ GNSSAttack = (*Freeze)(nil)
	_ GNSSAttack = (*Delay)(nil)
	_ GNSSAttack = (*Dropout)(nil)
	_ GNSSAttack = (*NoiseInflation)(nil)
	_ GNSSAttack = (*Meander)(nil)
)
