package attacks

import (
	"math"
	"testing"
	"testing/quick"

	"adassure/internal/geom"
	"adassure/internal/sensors"
)

func fixAt(t float64, x, y float64) sensors.GNSSFix {
	return sensors.GNSSFix{T: t, Pos: geom.V(x, y), Valid: true}
}

func TestWindow(t *testing.T) {
	w := Window{Start: 10, End: 20}
	if w.Contains(9.99) || !w.Contains(10) || !w.Contains(19.99) || w.Contains(20) {
		t.Error("window boundary semantics wrong")
	}
	open := Window{Start: 5}
	if !open.Contains(1e9) {
		t.Error("open-ended window should contain any t >= start")
	}
	if err := (Window{Start: -1}).Validate(); err == nil {
		t.Error("negative start accepted")
	}
	if err := (Window{Start: 5, End: 5}).Validate(); err == nil {
		t.Error("empty window accepted")
	}
	if err := (Window{Start: 5, End: 10}).Validate(); err != nil {
		t.Errorf("valid window rejected: %v", err)
	}
}

func TestStepSpoof(t *testing.T) {
	a, err := NewStepSpoof(Window{Start: 10, End: 20}, geom.V(0, 5))
	if err != nil {
		t.Fatal(err)
	}
	before, _ := a.Apply(fixAt(5, 1, 1), 5)
	if before.Pos != geom.V(1, 1) {
		t.Error("spoof active before window")
	}
	during, deliver := a.Apply(fixAt(15, 1, 1), 15)
	if !deliver || during.Pos != geom.V(1, 6) {
		t.Errorf("spoof offset wrong: %v", during.Pos)
	}
	after, _ := a.Apply(fixAt(25, 1, 1), 25)
	if after.Pos != geom.V(1, 1) {
		t.Error("spoof active after window")
	}
	if _, err := NewStepSpoof(Window{}, geom.Vec2{}); err == nil {
		t.Error("zero offset accepted")
	}
	if _, err := NewStepSpoof(Window{}, geom.V(math.NaN(), 0)); err == nil {
		t.Error("NaN offset accepted")
	}
}

func TestDriftSpoofGrowsAndSaturates(t *testing.T) {
	a, err := NewDriftSpoof(Window{Start: 10}, geom.V(0, 1), 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	at := func(ts float64) float64 {
		f, _ := a.Apply(fixAt(ts, 0, 0), ts)
		return f.Pos.Y
	}
	if got := at(10); got != 0 {
		t.Errorf("offset at onset = %g", got)
	}
	if got := at(14); math.Abs(got-2) > 1e-9 {
		t.Errorf("offset at +4s = %g, want 2", got)
	}
	if got := at(100); math.Abs(got-4) > 1e-9 {
		t.Errorf("offset should saturate at 4, got %g", got)
	}
	if _, err := NewDriftSpoof(Window{}, geom.V(1, 0), -1, 0); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := NewDriftSpoof(Window{}, geom.Vec2{}, 1, 0); err == nil {
		t.Error("zero direction accepted")
	}
}

func TestReplayDeliversStalePositions(t *testing.T) {
	a, err := NewReplay(Window{Start: 10, End: 20}, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-attack: vehicle moves along x at 1 m/s, fixes every 0.5 s.
	for ts := 0.0; ts < 10; ts += 0.5 {
		f, deliver := a.Apply(fixAt(ts, ts, 0), ts)
		if !deliver || f.Pos.X != ts {
			t.Fatalf("pre-attack pass-through broken at t=%g", ts)
		}
	}
	// During attack at t=12 the victim should see the fix from t≈7.
	f, deliver := a.Apply(fixAt(12, 12, 0), 12)
	if !deliver {
		t.Fatal("replay dropped fix")
	}
	if math.Abs(f.Pos.X-7) > 0.5 {
		t.Errorf("replayed position x=%g, want ~7", f.Pos.X)
	}
	if f.T != 12 {
		t.Errorf("replayed fix must be re-stamped: T=%g", f.T)
	}
	if _, err := NewReplay(Window{Start: 2}, 5); err == nil {
		t.Error("window earlier than capture lead accepted")
	}
}

func TestFreezeHoldsLastFix(t *testing.T) {
	a, err := NewFreeze(Window{Start: 10, End: 20})
	if err != nil {
		t.Fatal(err)
	}
	a.Apply(fixAt(9.9, 3, 4), 9.9)
	f, deliver := a.Apply(fixAt(15, 100, 100), 15)
	if !deliver || f.Pos != geom.V(3, 4) {
		t.Errorf("freeze should hold (3,4), got %v", f.Pos)
	}
	if f.T != 15 {
		t.Errorf("frozen fix should be re-stamped, got T=%g", f.T)
	}
	// Before any capture, degrade to pass-through.
	b, _ := NewFreeze(Window{Start: 0})
	f, _ = b.Apply(fixAt(1, 7, 7), 1)
	if f.Pos != geom.V(7, 7) {
		t.Error("freeze without history should pass through")
	}
}

func TestDelayBuffersFixes(t *testing.T) {
	a, err := NewDelay(Window{Start: 10, End: 30}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Pass-through before the window.
	f, deliver := a.Apply(fixAt(5, 1, 0), 5)
	if !deliver || f.Pos.X != 1 {
		t.Error("pre-window pass-through broken")
	}
	// During the window: fix at t=10 is held.
	if _, deliver := a.Apply(fixAt(10, 2, 0), 10); deliver {
		t.Error("fix should be delayed, not delivered")
	}
	// Subsequent fixes release the head once t >= 11.
	if _, deliver := a.Apply(fixAt(10.5, 3, 0), 10.5); deliver {
		t.Error("head released too early")
	}
	f, deliver = a.Apply(fixAt(11.2, 4, 0), 11.2)
	if !deliver || f.Pos.X != 2 {
		t.Errorf("head release wrong: deliver=%v pos=%v", deliver, f.Pos)
	}
	if _, err := NewDelay(Window{}, 0); err == nil {
		t.Error("zero delay accepted")
	}
}

func TestDropoutFullAndPartial(t *testing.T) {
	full, err := NewDropout(Window{Start: 0, End: 10}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, deliver := full.Apply(fixAt(5, 0, 0), 5); deliver {
		t.Error("full dropout delivered a fix")
	}
	if _, deliver := full.Apply(fixAt(15, 0, 0), 15); !deliver {
		t.Error("dropout active outside window")
	}
	part, err := NewDropout(Window{Start: 0, End: 100}, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	kept := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if _, deliver := part.Apply(fixAt(float64(i)*0.05, 0, 0), float64(i)*0.05); deliver {
			kept++
		}
	}
	if frac := float64(kept) / n; math.Abs(frac-0.5) > 0.05 {
		t.Errorf("partial dropout kept %.2f, want ~0.5", frac)
	}
	if _, err := NewDropout(Window{}, 1.5, 1); err == nil {
		t.Error("ratio > 1 accepted")
	}
}

func TestNoiseInflation(t *testing.T) {
	a, err := NewNoiseInflation(Window{Start: 0, End: 1000}, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	var sum, sumSq float64
	const n = 5000
	for i := 0; i < n; i++ {
		f, _ := a.Apply(fixAt(float64(i)*0.1, 0, 0), float64(i)*0.1)
		sum += f.Pos.X
		sumSq += f.Pos.X * f.Pos.X
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean) > 0.1 {
		t.Errorf("noise mean = %g", mean)
	}
	if math.Abs(std-2) > 0.15 {
		t.Errorf("noise std = %g, want ~2", std)
	}
}

func TestMeanderOscillates(t *testing.T) {
	a, err := NewMeander(Window{Start: 0}, 3, 8, geom.V(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	at := func(ts float64) float64 {
		f, _ := a.Apply(fixAt(ts, 0, 0), ts)
		return f.Pos.Y
	}
	if math.Abs(at(2)-3) > 1e-9 { // quarter period → peak
		t.Errorf("peak = %g, want 3", at(2))
	}
	if math.Abs(at(4)) > 1e-9 { // half period → zero
		t.Errorf("mid = %g, want 0", at(4))
	}
	if math.Abs(at(6)+3) > 1e-9 { // three-quarter → trough
		t.Errorf("trough = %g, want -3", at(6))
	}
}

func TestIMUHeadingBias(t *testing.T) {
	a, err := NewIMUHeadingBias(Window{Start: 5}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := a.Apply(sensors.IMUReading{T: 10, Heading: 3.0, Valid: true}, 10)
	want := geom.NormalizeAngle(3.3)
	if math.Abs(r.Heading-want) > 1e-12 {
		t.Errorf("biased heading = %g, want %g (normalised)", r.Heading, want)
	}
	if _, err := NewIMUHeadingBias(Window{}, 0); err == nil {
		t.Error("zero bias accepted")
	}
}

func TestOdomScale(t *testing.T) {
	a, err := NewOdomScale(Window{Start: 0}, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := a.Apply(sensors.OdomReading{T: 1, Speed: 4, Valid: true}, 1)
	if r.Speed != 6 {
		t.Errorf("scaled speed = %g", r.Speed)
	}
	if _, err := NewOdomScale(Window{}, 1); err == nil {
		t.Error("identity factor accepted")
	}
}

func TestStandardCampaigns(t *testing.T) {
	win := Window{Start: 15, End: 60}
	for _, class := range StandardClasses() {
		c, err := Standard(class, win, 1)
		if err != nil {
			t.Fatalf("Standard(%s): %v", class, err)
		}
		if c.Class() != class {
			t.Errorf("campaign class = %s, want %s", c.Class(), class)
		}
		if c.Name() == "" || c.Name() == "clean" {
			t.Errorf("campaign %s has bad name %q", class, c.Name())
		}
		if c.Onset() != 15 {
			t.Errorf("campaign %s onset = %g", class, c.Onset())
		}
	}
	clean, err := Standard(ClassNone, win, 1)
	if err != nil || clean.Class() != ClassNone || clean.Name() != "clean" || clean.Onset() != -1 {
		t.Errorf("clean campaign wrong: %+v err=%v", clean, err)
	}
	if _, err := Standard(Class("bogus"), win, 1); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestAttacksInactiveOutsideWindowProperty(t *testing.T) {
	win := Window{Start: 50, End: 60}
	mk := func() []GNSSAttack {
		step, _ := NewStepSpoof(win, geom.V(3, 0))
		drift, _ := NewDriftSpoof(win, geom.V(1, 0), 1, 0)
		noise, _ := NewNoiseInflation(win, 1, 3)
		meander, _ := NewMeander(win, 2, 5, geom.V(1, 0))
		return []GNSSAttack{step, drift, noise, meander}
	}
	as := mk()
	f := func(ts float64) bool {
		if math.IsNaN(ts) || math.IsInf(ts, 0) {
			return true
		}
		ts = math.Abs(math.Mod(ts, 50)) // always before the window
		in := fixAt(ts, 1, 2)
		for _, a := range as {
			out, deliver := a.Apply(in, ts)
			if !deliver || out.Pos != in.Pos {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
