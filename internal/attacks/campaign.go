package attacks

import (
	"fmt"
	"sort"

	"adassure/internal/geom"
	"adassure/internal/sensors"
)

// IMUAttack transforms the IMU reading stream.
type IMUAttack interface {
	Name() string
	Class() Class
	Window() Window
	Apply(r sensors.IMUReading, t float64) (sensors.IMUReading, bool)
}

// OdomAttack transforms the odometry reading stream.
type OdomAttack interface {
	Name() string
	Class() Class
	Window() Window
	Apply(r sensors.OdomReading, t float64) (sensors.OdomReading, bool)
}

// IMUHeadingBias injects a constant heading offset into IMU readings —
// e.g. a compromised sensor-fusion node or magnetometer interference.
type IMUHeadingBias struct {
	base
	Bias float64
}

// NewIMUHeadingBias constructs an IMU heading-bias attack.
func NewIMUHeadingBias(win Window, bias float64) (*IMUHeadingBias, error) {
	if err := win.Validate(); err != nil {
		return nil, err
	}
	if bias == 0 {
		return nil, fmt.Errorf("attacks: IMU heading bias must be non-zero")
	}
	return &IMUHeadingBias{base: base{name: fmt.Sprintf("imu-heading-bias(%.2frad)", bias), class: ClassIMUHeadingBias, win: win}, Bias: bias}, nil
}

// Apply implements IMUAttack.
func (a *IMUHeadingBias) Apply(r sensors.IMUReading, t float64) (sensors.IMUReading, bool) {
	if a.win.Contains(t) {
		r.Heading = geom.NormalizeAngle(r.Heading + a.Bias)
	}
	return r, true
}

// OdomScale multiplies reported wheel speed by a factor — e.g. a spoofed
// wheel-speed CAN message or a tire-circumference miscalibration exploit.
type OdomScale struct {
	base
	Factor float64
}

// NewOdomScale constructs an odometry scaling attack.
func NewOdomScale(win Window, factor float64) (*OdomScale, error) {
	if err := win.Validate(); err != nil {
		return nil, err
	}
	if factor <= 0 || factor == 1 {
		return nil, fmt.Errorf("attacks: odom scale factor must be positive and != 1, got %g", factor)
	}
	return &OdomScale{base: base{name: fmt.Sprintf("odom-scale(×%.2f)", factor), class: ClassOdomScale, win: win}, Factor: factor}, nil
}

// Apply implements OdomAttack.
func (a *OdomScale) Apply(r sensors.OdomReading, t float64) (sensors.OdomReading, bool) {
	if a.win.Contains(t) {
		r.Speed *= a.Factor
	}
	return r, true
}

// Campaign bundles the attacks active in one simulation run, at most one
// per channel (the experiments inject a single root cause per run so the
// diagnosis ground truth is unambiguous).
type Campaign struct {
	GNSS     GNSSAttack
	IMU      IMUAttack
	Odom     OdomAttack
	Actuator ActuatorAttack
}

// Class returns the ground-truth class of the campaign: the class of its
// single attack, or ClassNone for a clean run.
func (c Campaign) Class() Class {
	switch {
	case c.GNSS != nil:
		return c.GNSS.Class()
	case c.IMU != nil:
		return c.IMU.Class()
	case c.Odom != nil:
		return c.Odom.Class()
	case c.Actuator != nil:
		return c.Actuator.Class()
	}
	return ClassNone
}

// Name returns a human-readable identifier for the campaign.
func (c Campaign) Name() string {
	switch {
	case c.GNSS != nil:
		return c.GNSS.Name()
	case c.IMU != nil:
		return c.IMU.Name()
	case c.Odom != nil:
		return c.Odom.Name()
	case c.Actuator != nil:
		return c.Actuator.Name()
	}
	return "clean"
}

// ActiveWindow returns the activation window of the campaign's single
// attack; ok is false for a clean campaign. The simulation engine uses it
// to emit attack begin/end events onto the run's timeline.
func (c Campaign) ActiveWindow() (Window, bool) {
	switch {
	case c.GNSS != nil:
		return c.GNSS.Window(), true
	case c.IMU != nil:
		return c.IMU.Window(), true
	case c.Odom != nil:
		return c.Odom.Window(), true
	case c.Actuator != nil:
		return c.Actuator.Window(), true
	}
	return Window{}, false
}

// Onset returns the activation time of the campaign's attack, or -1 for a
// clean campaign.
func (c Campaign) Onset() float64 {
	switch {
	case c.GNSS != nil:
		return c.GNSS.Window().Start
	case c.IMU != nil:
		return c.IMU.Window().Start
	case c.Odom != nil:
		return c.Odom.Window().Start
	case c.Actuator != nil:
		return c.Actuator.Window().Start
	}
	return -1
}

// StandardClasses lists the attack classes exercised by the experiment
// harness, in stable order.
func StandardClasses() []Class {
	cs := []Class{
		ClassStepSpoof, ClassDriftSpoof, ClassReplay, ClassFreeze,
		ClassDelay, ClassDropout, ClassNoiseInflation, ClassMeander,
		ClassIMUHeadingBias, ClassOdomScale,
		ClassStuckSteer, ClassSteerOffset,
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	return cs
}

// Standard builds the canonical campaign for a class, with the paper-style
// default parameters, activating over the given window. The seed feeds the
// stochastic attacks (dropout, noise inflation).
func Standard(class Class, win Window, seed int64) (Campaign, error) {
	switch class {
	case ClassNone:
		return Campaign{}, nil
	case ClassStepSpoof:
		a, err := NewStepSpoof(win, geom.V(0, 5))
		return Campaign{GNSS: a}, err
	case ClassDriftSpoof:
		a, err := NewDriftSpoof(win, geom.V(0, 1), 0.5, 15)
		return Campaign{GNSS: a}, err
	case ClassReplay:
		a, err := NewReplay(win, 10)
		return Campaign{GNSS: a}, err
	case ClassFreeze:
		a, err := NewFreeze(win)
		return Campaign{GNSS: a}, err
	case ClassDelay:
		a, err := NewDelay(win, 1.0)
		return Campaign{GNSS: a}, err
	case ClassDropout:
		a, err := NewDropout(win, 1.0, seed)
		return Campaign{GNSS: a}, err
	case ClassNoiseInflation:
		a, err := NewNoiseInflation(win, 2.0, seed)
		return Campaign{GNSS: a}, err
	case ClassMeander:
		a, err := NewMeander(win, 3.0, 8.0, geom.V(0, 1))
		return Campaign{GNSS: a}, err
	case ClassIMUHeadingBias:
		a, err := NewIMUHeadingBias(win, 0.3)
		return Campaign{IMU: a}, err
	case ClassOdomScale:
		a, err := NewOdomScale(win, 1.5)
		return Campaign{Odom: a}, err
	case ClassStuckSteer:
		a, err := NewStuckSteer(win)
		return Campaign{Actuator: a}, err
	case ClassSteerOffset:
		a, err := NewSteerOffset(win, 0.08)
		return Campaign{Actuator: a}, err
	}
	return Campaign{}, fmt.Errorf("attacks: unknown class %q", class)
}

var (
	_ IMUAttack  = (*IMUHeadingBias)(nil)
	_ OdomAttack = (*OdomScale)(nil)
)
