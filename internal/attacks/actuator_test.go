package attacks

import (
	"testing"

	"adassure/internal/vehicle"
)

func TestStuckSteerLatchesAtOnset(t *testing.T) {
	a, err := NewStuckSteer(Window{Start: 10, End: 20})
	if err != nil {
		t.Fatal(err)
	}
	// Before the window: pass-through.
	out := a.Apply(vehicle.Command{Steer: 0.3, Accel: 1}, 5)
	if out.Steer != 0.3 {
		t.Error("pre-window command modified")
	}
	// First in-window command is latched.
	out = a.Apply(vehicle.Command{Steer: 0.1}, 10.5)
	if out.Steer != 0.1 {
		t.Errorf("latch value = %g", out.Steer)
	}
	// Subsequent commands are overridden with the latched value.
	out = a.Apply(vehicle.Command{Steer: -0.4, Accel: 2}, 15)
	if out.Steer != 0.1 {
		t.Errorf("stuck steer = %g, want 0.1", out.Steer)
	}
	if out.Accel != 2 {
		t.Error("accel channel must pass through")
	}
	// After the window: released.
	out = a.Apply(vehicle.Command{Steer: -0.4}, 25)
	if out.Steer != -0.4 {
		t.Error("post-window command modified")
	}
	// Re-entry (new window instance semantics): re-latches fresh.
	b, _ := NewStuckSteer(Window{Start: 30, End: 40})
	b.Apply(vehicle.Command{Steer: 0.2}, 31)
	if got := b.Apply(vehicle.Command{Steer: 0.5}, 35); got.Steer != 0.2 {
		t.Errorf("second latch = %g", got.Steer)
	}
}

func TestSteerOffset(t *testing.T) {
	a, err := NewSteerOffset(Window{Start: 10, End: 20}, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	if out := a.Apply(vehicle.Command{Steer: 0.1}, 15); out.Steer != 0.18 {
		t.Errorf("offset steer = %g", out.Steer)
	}
	if out := a.Apply(vehicle.Command{Steer: 0.1}, 25); out.Steer != 0.1 {
		t.Error("offset active outside window")
	}
	if _, err := NewSteerOffset(Window{}, 0); err == nil {
		t.Error("zero offset accepted")
	}
}

func TestActuatorCampaignPlumbing(t *testing.T) {
	camp, err := Standard(ClassStuckSteer, Window{Start: 5, End: 10}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if camp.Actuator == nil || camp.Class() != ClassStuckSteer || camp.Onset() != 5 {
		t.Errorf("campaign = %+v", camp)
	}
	if camp.Name() != "stuck-steer" {
		t.Errorf("name = %q", camp.Name())
	}
	if n := len(StandardClasses()); n != 12 {
		t.Errorf("standard classes = %d, want 12", n)
	}
}
