package attacks

import (
	"fmt"

	"adassure/internal/vehicle"
)

// Additional fault classes on the actuation path. Unlike the sensor
// attacks these corrupt the command *after* the controller, modelling a
// compromised drive-by-wire node or a mechanical fault — the other half of
// the debugging surface (the controller believes it is steering; the
// vehicle is not).
const (
	ClassStuckSteer  Class = "actuator-stuck-steer"
	ClassSteerOffset Class = "actuator-steer-offset"
)

// ActuatorAttack transforms the command stream between the controller and
// the plant.
type ActuatorAttack interface {
	Name() string
	Class() Class
	Window() Window
	// Apply transforms the command issued at time t.
	Apply(cmd vehicle.Command, t float64) vehicle.Command
}

// StuckSteer freezes the steering command at the value observed at attack
// onset (a latched drive-by-wire fault).
type StuckSteer struct {
	base
	latched   bool
	heldShown float64
}

// NewStuckSteer constructs a stuck-steering fault.
func NewStuckSteer(win Window) (*StuckSteer, error) {
	if err := win.Validate(); err != nil {
		return nil, err
	}
	return &StuckSteer{base: base{name: "stuck-steer", class: ClassStuckSteer, win: win}}, nil
}

// Apply implements ActuatorAttack.
func (a *StuckSteer) Apply(cmd vehicle.Command, t float64) vehicle.Command {
	if !a.win.Contains(t) {
		a.latched = false
		return cmd
	}
	if !a.latched {
		a.heldShown = cmd.Steer
		a.latched = true
	}
	cmd.Steer = a.heldShown
	return cmd
}

// SteerOffset adds a constant bias to the executed steering (a bent
// linkage, a miscalibrated steer-by-wire zero, or an injected CAN offset).
type SteerOffset struct {
	base
	Offset float64
}

// NewSteerOffset constructs a steering-offset fault.
func NewSteerOffset(win Window, offset float64) (*SteerOffset, error) {
	if err := win.Validate(); err != nil {
		return nil, err
	}
	if offset == 0 {
		return nil, fmt.Errorf("attacks: steer offset must be non-zero")
	}
	return &SteerOffset{base: base{name: fmt.Sprintf("steer-offset(%+.2frad)", offset), class: ClassSteerOffset, win: win}, Offset: offset}, nil
}

// Apply implements ActuatorAttack.
func (a *SteerOffset) Apply(cmd vehicle.Command, t float64) vehicle.Command {
	if a.win.Contains(t) {
		cmd.Steer += a.Offset
	}
	return cmd
}

var (
	_ ActuatorAttack = (*StuckSteer)(nil)
	_ ActuatorAttack = (*SteerOffset)(nil)
)
