package attacks

import (
	"fmt"
	"sort"

	"adassure/internal/sensors"
)

// Sequence composes multiple GNSS attacks with non-overlapping windows into
// one channel transform, modelling a campaign that probes a victim with
// several techniques in a single drive. Each fix is transformed by the
// attack whose window contains its observation time; outside every window
// the fix passes through untouched.
type Sequence struct {
	name    string
	attacks []GNSSAttack
}

// NewSequence builds a sequential campaign. Windows must be well-formed,
// non-overlapping and bounded (an open-ended window may only be last).
func NewSequence(as ...GNSSAttack) (*Sequence, error) {
	if len(as) == 0 {
		return nil, fmt.Errorf("attacks: sequence needs at least one attack")
	}
	sorted := make([]GNSSAttack, len(as))
	copy(sorted, as)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].Window().Start < sorted[j].Window().Start
	})
	for i, a := range sorted {
		w := a.Window()
		if err := w.Validate(); err != nil {
			return nil, err
		}
		if i < len(sorted)-1 {
			next := sorted[i+1].Window()
			if w.End == 0 {
				return nil, fmt.Errorf("attacks: open-ended window of %s must be last in a sequence", a.Name())
			}
			if next.Start < w.End {
				return nil, fmt.Errorf("attacks: windows of %s and %s overlap", a.Name(), sorted[i+1].Name())
			}
		}
	}
	name := "seq("
	for i, a := range sorted {
		if i > 0 {
			name += "→"
		}
		name += a.Name()
	}
	name += ")"
	return &Sequence{name: name, attacks: sorted}, nil
}

// Name implements GNSSAttack.
func (s *Sequence) Name() string { return s.name }

// Class implements GNSSAttack; a sequence reports the class of its first
// stage (ground truth for multi-stage campaigns is per-segment — see
// diagnosis.Segment).
func (s *Sequence) Class() Class { return s.attacks[0].Class() }

// Window implements GNSSAttack: the hull from the first start to the last
// end (open if the last stage is open).
func (s *Sequence) Window() Window {
	return Window{Start: s.attacks[0].Window().Start, End: s.attacks[len(s.attacks)-1].Window().End}
}

// Stages returns the composed attacks in time order.
func (s *Sequence) Stages() []GNSSAttack {
	out := make([]GNSSAttack, len(s.attacks))
	copy(out, s.attacks)
	return out
}

// Apply implements GNSSAttack. Every stage sees every fix (stateful attacks
// such as Replay and Freeze need the pass-through traffic to build their
// capture history); the stage whose window is active determines the
// delivered result.
func (s *Sequence) Apply(fix sensors.GNSSFix, t float64) (sensors.GNSSFix, bool) {
	out, deliver := fix, true
	for _, a := range s.attacks {
		if a.Window().Contains(t) {
			out, deliver = a.Apply(fix, t)
		} else {
			// Feed pass-through traffic so stateful stages keep capturing.
			a.Apply(fix, t)
		}
	}
	return out, deliver
}

var _ GNSSAttack = (*Sequence)(nil)
